"""Tests for the robustness-sweep layer: spec validation and expansion,
paired seeding, survival/re-stabilization curves, dominance of the
fault-tolerant line, JSON round-trips, executor equivalence, and the
``repro-net robustness`` / ``bench --robustness`` surfaces."""

from __future__ import annotations

import json

import pytest

from repro.analysis.robustness import (
    FAULT_FAMILIES,
    RobustnessResult,
    RobustnessSpec,
    run_robustness,
    run_robustness_trial,
)
from repro.analysis.runner import ExperimentError
from repro.cli import main
from repro.core.serialization import (
    dump_robustness_result,
    load_robustness_result,
)


def _small_spec(**overrides) -> RobustnessSpec:
    defaults = dict(
        protocols=("simple-global-line", "ft-global-line"),
        loads=(0, 1, 2),
        n=14,
        trials=4,
        max_steps=2_000_000,
    )
    defaults.update(overrides)
    return RobustnessSpec(**defaults)


class TestRobustnessSpec:
    def test_protocols_canonicalized(self):
        spec = _small_spec(protocols=("fault-tolerant-global-line",))
        assert spec.protocols == ("ft-global-line",)

    def test_fault_at_defaults_to_n_squared(self):
        assert _small_spec(n=14).fault_at == 196
        assert _small_spec(at=77).fault_at == 77

    def test_load_zero_is_the_faultless_baseline(self):
        spec = _small_spec()
        assert spec.fault_spec(0) is None
        assert spec.scenario(0).is_default

    def test_crash_loads_render_counts(self):
        spec = _small_spec(at=100)
        assert spec.fault_spec(2) == "crash:count=2,at=100"

    def test_rate_families(self):
        spec = _small_spec(faults="edge-drop", loads=(0, 0.01))
        assert spec.fault_spec(0.01) == "edge-drop:rate=0.01"
        spec = _small_spec(faults="churn", loads=(0.001,))
        assert spec.fault_spec(0.001) == "churn:rate=0.001"
        spec = _small_spec(faults="edge-rate", loads=(0, 0.001))
        assert spec.fault_spec(0.001) == "edge-rate:rate=0.001"

    def test_byzantine_family_pins_a_differentiating_cadence(self):
        # Byzantine loads are node counts; the family pins the lie rate
        # below the model default so construction has begun before the
        # first lie lands at bench populations.
        spec = _small_spec(faults="byzantine", loads=(0, 2))
        assert spec.fault_spec(2) == (
            "byzantine:count=2,mode=random-state,rate=0.00001"
        )
        with pytest.raises(ExperimentError, match="integers"):
            _small_spec(faults="byzantine", loads=(0.5,))

    def test_scheduler_axis_canonicalized(self):
        spec = _small_spec(scheduler="adversarial-targeted")
        assert spec.scheduler == "targeted:aim=leader,bias=0.9"
        assert RobustnessSpec.from_dict(spec.to_dict()) == spec
        # Records written before the adversarial axis landed decode to
        # the uniform scheduler.
        payload = _small_spec().to_dict()
        del payload["scheduler"]
        assert RobustnessSpec.from_dict(payload).scheduler == "uniform"

    def test_validation(self):
        with pytest.raises(ExperimentError, match="fault family"):
            _small_spec(faults="meteor")
        with pytest.raises(ExperimentError, match="max_steps"):
            _small_spec(max_steps=None)
        with pytest.raises(ExperimentError, match="integers"):
            _small_spec(loads=(0, 0.5))  # crash loads are counts
        with pytest.raises(ExperimentError, match="rates"):
            _small_spec(faults="edge-drop", loads=(1.5,))
        with pytest.raises(ExperimentError, match="protocol"):
            _small_spec(protocols=())
        with pytest.raises(ExperimentError, match="load"):
            _small_spec(loads=())

    def test_families_registry(self):
        assert set(FAULT_FAMILIES) == {
            "crash", "edge-drop", "edge-rate", "churn", "byzantine",
        }

    def test_expansion_order_and_count(self):
        spec = _small_spec(trials=3)
        trials = spec.expand()
        assert len(trials) == 2 * 3 * 3
        assert trials[0].protocol == "simple-global-line"
        assert [t.load for t in trials[:9]] == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_seeds_are_paired_across_protocols(self):
        spec = _small_spec(trials=3)
        by_protocol = {
            p: [
                (t.load, t.trial, t.seed, t.fault)
                for t in spec.expand()
                if t.protocol == p
            ]
            for p in spec.protocols
        }
        assert by_protocol["simple-global-line"] == by_protocol["ft-global-line"]

    def test_spec_dict_round_trip(self):
        spec = _small_spec(at=123, label="x")
        assert RobustnessSpec.from_dict(spec.to_dict()) == spec


class TestRobustnessExecution:
    @pytest.fixture(scope="class")
    def result(self) -> RobustnessResult:
        return run_robustness(_small_spec())

    def test_survival_curves_and_dominance(self, result):
        ft = result.survival_curve("ft-global-line")
        plain = result.survival_curve("simple-global-line")
        # Both protocols are identical without faults...
        assert ft[0] == plain[0] == 1.0
        # ...and the fault-tolerant one survives everything while the
        # plain line loses runs as the crash load grows.
        assert all(rate == 1.0 for rate in ft.values())
        assert plain[2] < 1.0
        assert result.dominates("ft-global-line", "simple-global-line")
        assert not result.dominates("simple-global-line", "ft-global-line")

    def test_restabilization_curve(self, result):
        curve = result.restabilization_curve("ft-global-line")
        assert set(curve) == {0, 1, 2}
        assert all(v is not None and v > 0 for v in curve.values())

    def test_records_are_complete(self, result):
        assert len(result.records) == 2 * 3 * 4
        for record in result.records:
            assert record.steps <= result.spec.max_steps
            assert record.alive == record.n - (
                record.load if record.load else 0
            )
            if record.survived:
                assert record.converged

    def test_baseline_cells_identical_across_protocols(self, result):
        # Load 0 runs the default scenario with paired seeds; the two
        # line protocols have identical faultless dynamics, so their
        # baseline cells must agree trial by trial.
        plain = [
            (r.trial, r.value, r.steps)
            for r in result.records_for("simple-global-line", 0)
        ]
        ft = [
            (r.trial, r.value, r.steps)
            for r in result.records_for("ft-global-line", 0)
        ]
        assert plain == ft

    def test_json_round_trip(self, result):
        clone = RobustnessResult.from_json(result.to_json())
        assert clone == result
        assert clone.spec == result.spec

    def test_dump_load_file(self, result, tmp_path):
        path = tmp_path / "robustness.json"
        dump_robustness_result(result, str(path))
        assert load_robustness_result(str(path)) == result
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert payload["spec"]["faults"] == "crash"

    def test_executor_equivalence(self, result):
        parallel = run_robustness(result.spec, jobs=2)
        assert [r.deterministic() for r in parallel.records] == [
            r.deterministic() for r in result.records
        ]

    def test_single_trial_matches_sweep(self, result):
        trial = result.spec.expand()[0]
        record = run_robustness_trial(trial)
        assert record.deterministic() == result.records[0].deterministic()

    def test_unknown_cell_raises(self, result):
        with pytest.raises(ExperimentError, match="no records"):
            result.survival_rate("ft-global-line", 99)


def _synthetic_result(curves: dict[str, dict[float, float]], loads=(0, 1, 2)):
    """A RobustnessResult with prescribed survival rates (4 trials per
    cell; rates must be multiples of 0.25)."""
    from repro.analysis.robustness import RobustnessRecord

    spec = _small_spec(protocols=tuple(curves), loads=tuple(loads))
    records = []
    for protocol, curve in curves.items():
        for load in loads:
            winners = round(curve[load] * 4)
            for trial in range(4):
                records.append(RobustnessRecord(
                    protocol=protocol, load=load, n=spec.n, trial=trial,
                    seed=trial, value=1.0, steps=100, effective_steps=50,
                    converged=True, survived=trial < winners, alive=spec.n,
                    stop_reason="stabilized", elapsed_seconds=0.0,
                ))
    return RobustnessResult(spec=spec, records=tuple(records))


class TestDominanceEdgeCases:
    def test_identical_curves_tie_both_ways(self):
        result = _synthetic_result({
            "simple-global-line": {0: 1.0, 1: 0.5, 2: 0.25},
            "ft-global-line": {0: 1.0, 1: 0.5, 2: 0.25},
        })
        assert not result.dominates("ft-global-line", "simple-global-line")
        assert not result.dominates("simple-global-line", "ft-global-line")

    def test_strict_win_at_one_positive_load_suffices(self):
        result = _synthetic_result({
            "simple-global-line": {0: 1.0, 1: 0.5, 2: 0.25},
            "ft-global-line": {0: 1.0, 1: 0.5, 2: 0.5},
        })
        assert result.dominates("ft-global-line", "simple-global-line")

    def test_load_zero_advantage_alone_does_not_dominate(self):
        # Winning only the faultless column is not fault tolerance.
        result = _synthetic_result({
            "simple-global-line": {0: 0.75, 1: 0.5, 2: 0.5},
            "ft-global-line": {0: 1.0, 1: 0.5, 2: 0.5},
        })
        assert not result.dominates("ft-global-line", "simple-global-line")

    def test_any_regression_forfeits_dominance(self):
        result = _synthetic_result({
            "simple-global-line": {0: 1.0, 1: 0.25, 2: 0.5},
            "ft-global-line": {0: 1.0, 1: 1.0, 2: 0.25},
        })
        assert not result.dominates("ft-global-line", "simple-global-line")

    def test_single_load_spec_never_dominates(self):
        # A loads=(0,) grid has no positive load to be strictly better
        # at, so dominance is unattainable by construction.
        result = _synthetic_result(
            {
                "simple-global-line": {0: 0.5},
                "ft-global-line": {0: 1.0},
            },
            loads=(0,),
        )
        assert not result.dominates("ft-global-line", "simple-global-line")

    def test_missing_cells_raise_not_mislead(self):
        result = _synthetic_result({
            "simple-global-line": {0: 1.0, 1: 0.5, 2: 0.25},
            "ft-global-line": {0: 1.0, 1: 0.5, 2: 0.5},
        })
        with pytest.raises(ExperimentError, match="no records"):
            result.survival_rate("ft-global-line", 7)
        with pytest.raises(ExperimentError, match="no records"):
            result.dominates("rc-global-line", "simple-global-line")
        curve = result.survival_curve("ft-global-line")
        assert set(curve) == {0, 1, 2}


class TestRobustnessAllEngines:
    @pytest.mark.parametrize("engine", ["indexed", "agitated", "sequential"])
    def test_grid_runs_on_every_engine(self, engine):
        spec = _small_spec(
            n=10, trials=2, loads=(0, 2), engine=engine,
            max_steps=500_000,
        )
        result = run_robustness(spec)
        assert len(result.records) == 8
        assert result.survival_rate("ft-global-line", 2) == 1.0


class TestRobustnessCli:
    def test_cli_end_to_end(self, capsys, tmp_path):
        out = tmp_path / "cli.json"
        rc = main([
            "robustness", "simple-global-line", "ft-global-line",
            "--faults", "crash", "--loads", "0,2", "-n", "12",
            "--trials", "3", "--max-steps", "2000000",
            "--out", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "survival" in text
        assert "ft-global-line dominates simple-global-line" in text
        loaded = load_robustness_result(str(out))
        assert loaded.spec.loads == (0, 2)
        assert loaded.dominates("ft-global-line", "simple-global-line")

    def test_cli_defaults_budget(self, capsys):
        rc = main([
            "robustness", "ft-global-line", "--loads", "0", "-n", "8",
            "--trials", "1",
        ])
        assert rc == 0
        assert "defaulting --max-steps" in capsys.readouterr().out

    def test_cli_rejects_unknown_family(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "robustness", "ft-global-line", "--faults", "meteor",
                "--loads", "0",
            ])


class TestBenchRobustness:
    def test_bench_record_and_formatting(self, tmp_path):
        from repro.analysis.bench import (
            bench_robustness,
            format_bench_robustness,
        )

        out = tmp_path / "BENCH_robustness.json"
        record = bench_robustness(
            protocols=("simple-global-line", "ft-global-line"),
            families={"crash": (0, 2)},
            n=12, trials=2, jobs=1, out=str(out),
        )
        assert record["schema"] == "repro-bench-robustness/2"
        assert record["protocols"] == ["simple-global-line", "ft-global-line"]
        fam = record["families"]["crash"]
        assert fam["trial_count"] == 2 * 2 * 2
        assert fam["survival"]["ft-global-line"]["2"] == 1.0
        assert fam["dominates"]["ft-global-line"]["simple-global-line"] is True
        assert fam["dominates"]["simple-global-line"]["ft-global-line"] is False
        assert json.loads(out.read_text())["schema"] == record["schema"]
        text = format_bench_robustness(record)
        assert "crash" in text
        assert "ft-global-line dominates simple-global-line" in text

    def test_bench_default_families_cover_adversarial_axis(self):
        from repro.analysis.bench import (
            ROBUSTNESS_FAMILIES,
            ROBUSTNESS_PROTOCOLS,
        )
        from repro.analysis.robustness import FAULT_FAMILIES

        assert "rc-global-line" in ROBUSTNESS_PROTOCOLS
        assert {"byzantine", "edge-drop"} <= set(ROBUSTNESS_FAMILIES)
        assert set(ROBUSTNESS_FAMILIES) <= set(FAULT_FAMILIES)
        for loads in ROBUSTNESS_FAMILIES.values():
            assert loads[0] == 0  # every grid anchors a fault-free column
