"""Tests for the raw Turing-machine substrate and the graph deciders."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.errors import EncodingError, MachineError
from repro.generic.random_graphs import gnp
from repro.tm import (
    BLANK,
    TMDecider,
    TuringMachine,
    decode_tape,
    edge_bit_index,
    encode_graph,
    even_edges_machine,
    order_from_length,
    registry,
)
from repro.tm.machine import Step


class TestMachineBasics:
    def test_invalid_move_rejected(self):
        with pytest.raises(MachineError):
            Step("s", "0", "X")

    def test_missing_transition_raises(self):
        machine = TuringMachine("t", {}, start="s")
        with pytest.raises(MachineError, match="no transition"):
            machine.run(["0"])

    def test_off_tape_move_raises(self):
        machine = TuringMachine(
            "t", {("s", "0"): ("s", "0", "L")}, start="s"
        )
        with pytest.raises(MachineError, match="off the bounded tape"):
            machine.run(["0"])

    def test_accept_reject_states_halt(self):
        machine = TuringMachine(
            "t", {("s", "0"): ("accept", "0", "S")}, start="s"
        )
        result = machine.run(["0"])
        assert result.halted and result.accepted

    def test_step_budget(self):
        machine = TuringMachine(
            "loop",
            {("s", "0"): ("s2", "0", "R"), ("s2", "0"): ("s", "0", "L")},
            start="s",
        )
        result = machine.run(["0", "0"], max_steps=10)
        assert not result.halted
        with pytest.raises(MachineError):
            machine.accepts(["0", "0"], max_steps=10)

    def test_cells_used_tracked(self):
        machine = even_edges_machine()
        result = machine.run(["1", "0", BLANK])
        assert result.cells_used == 3


class TestEncoding:
    def test_roundtrip_random_graphs(self):
        import random

        rng = random.Random(0)
        for k in (2, 3, 5, 8):
            graph = gnp(k, 0.4, rng)
            assert nx.is_isomorphic(graph, decode_tape(encode_graph(graph)))

    def test_length_is_triangular(self):
        assert order_from_length(10) == 5
        with pytest.raises(EncodingError):
            order_from_length(7)

    def test_edge_bit_index_bijective(self):
        k = 6
        seen = {edge_bit_index(i, j, k) for i in range(k) for j in range(i + 1, k)}
        assert seen == set(range(k * (k - 1) // 2))

    def test_edge_bit_index_matches_encoding(self):
        graph = nx.Graph([(0, 3), (2, 4)])
        graph.add_nodes_from(range(5))
        bits = encode_graph(graph)
        assert bits[edge_bit_index(0, 3, 5)] == "1"
        assert bits[edge_bit_index(2, 4, 5)] == "1"
        assert sum(b == "1" for b in bits) == 2

    def test_invalid_symbols_rejected(self):
        with pytest.raises(EncodingError):
            decode_tape(["1", "x", "0"])

    def test_ordering_validation(self):
        graph = nx.path_graph(3)
        with pytest.raises(EncodingError):
            encode_graph(graph, nodes=[0, 0, 1])
        with pytest.raises(EncodingError):
            encode_graph(graph, nodes=[0, 1])


class TestDecidersAgainstGroundTruth:
    """Every decider must agree with the obvious Python predicate on a
    batch of random graphs."""

    TRUTHS = {
        "has-edge": lambda g: g.number_of_edges() >= 1,
        "empty": lambda g: g.number_of_edges() == 0,
        "complete": lambda g: g.number_of_edges()
        == g.number_of_nodes() * (g.number_of_nodes() - 1) // 2,
        "even-edges": lambda g: g.number_of_edges() % 2 == 0,
        "one-edge": lambda g: g.number_of_edges() == 1,
        "zigzag-nonempty": lambda g: g.number_of_edges() >= 1,
        "connected": nx.is_connected,
        "min-degree-1": lambda g: all(d >= 1 for _, d in g.degree()),
        "2-regular": lambda g: all(d == 2 for _, d in g.degree()),
        "triangle-free": lambda g: sum(nx.triangles(g).values()) == 0,
        "tree": nx.is_tree,
        "bipartite": nx.is_bipartite,
    }

    @pytest.mark.parametrize("name", sorted(TRUTHS))
    def test_decider_matches_truth(self, name):
        import random

        deciders = registry()
        rng = random.Random(17)
        for trial in range(25):
            k = rng.randint(2, 7)
            graph = gnp(k, rng.choice([0.2, 0.5, 0.8]), rng)
            expected = self.TRUTHS[name](graph)
            assert deciders[name].decide(graph) == expected, (name, trial)

    def test_tm_decider_tape_has_sentinel(self):
        decider = registry()["has-edge"]
        assert isinstance(decider, TMDecider)
        tape = decider.tape_for(nx.path_graph(3))
        assert tape[-1] == BLANK
