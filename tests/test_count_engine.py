"""The count engine: routing, regimes, and the equivalence gate.

The count engine (:class:`repro.core.counting.CountSimulator`) is the
anonymity-native fourth engine: a run is a ``(state -> count)`` census
plus the annealed edge statistic, stepped in tau-leaped batches above
``leap_threshold`` and delegated verbatim to the indexed engine below
it.  This suite pins the contract from both sides:

* **routing** — ``supports()`` declines exactly the identity-based
  scenarios (cut/byzantine faults, doped/graph inits, non-uniform
  schedulers) and ``resolve_engine`` falls back to the sequential
  reference for them;
* **exact regime** — below the threshold the engine is bit-identical to
  the indexed engine, so the KS/CI-band distributional gates (faultless
  Figure-2 line, and crash / arrivals / churn / edge-rate scenarios)
  compare genuinely independent seed ranges of the same law;
* **leap regime** — forced with ``leap_threshold=0``: exact on
  census-Markov processes (the one-way epidemic matches the closed-form
  expectation), structurally convergent on the line family, and
  invariant-preserving under census-wise faults;
* **census round-trip** — Hypothesis properties for
  ``Configuration.census`` / ``from_census`` conservation and for
  :func:`derive_edge_census` / :func:`census_sample_states`.
"""

from __future__ import annotations

import itertools
import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configuration import Census, Configuration, census_pair_key
from repro.core.counting import (
    IDENTITY_FAULTS,
    IDENTITY_INITS,
    CountSimulator,
    derive_edge_census,
)
from repro.core.errors import SimulationError
from repro.core.faults import DEAD, census_sample_states
from repro.core.scenario import Scenario, make_scenario_engine, resolve_engine
from repro.core.simulator import ENGINES, IndexedSimulator, make_engine
from repro.processes import OneWayEpidemic, one_way_epidemic_expectation
from repro.protocols import FTGlobalLine, SimpleGlobalLine


class TestEngineRouting:
    """Registration and anonymity-aware scenario routing."""

    def test_registered_as_fourth_engine(self):
        assert "count" in ENGINES
        sim = make_engine("count", seed=0)
        assert isinstance(sim, CountSimulator)
        # The exact regime is inherited, not reimplemented.
        assert isinstance(sim, IndexedSimulator)

    @pytest.mark.parametrize(
        "scenario",
        [
            Scenario(),
            Scenario(faults=("crash:count=1,at=40",)),
            Scenario(faults=("arrive:count=2,at=40",)),
            Scenario(faults=("churn:rate=0.001",)),
            Scenario(faults=("edge-rate:rate=0.0001",)),
            Scenario(faults=("edge-drop:rate=0.002",)),
        ],
        ids=lambda s: s.describe(),
    )
    def test_supports_census_safe_scenarios(self, scenario):
        assert CountSimulator.supports(scenario)
        assert resolve_engine("count", scenario) == "count"

    @pytest.mark.parametrize(
        "scenario",
        [
            Scenario(faults=("cut:edges=0-1,at=10",)),
            Scenario(faults=("byzantine:count=1,rate=0.001,lie=0.5",)),
            Scenario(init="doped:state=l,count=2"),
            Scenario(init="graph:graph=path-4"),
            Scenario(scheduler="rr"),
            Scenario(scheduler="laggard:lagged=0..1"),
            Scenario(scheduler="targeted:aim=leader"),
        ],
        ids=lambda s: s.describe(),
    )
    def test_declines_identity_based_scenarios(self, scenario):
        assert not CountSimulator.supports(scenario)
        # The scenario layer falls back to the per-node reference engine
        # rather than running an anonymity-unsafe census.
        assert resolve_engine("count", scenario, warn=False) == "sequential"
        with pytest.raises(SimulationError):
            make_scenario_engine("count", 0, scenario)

    def test_identity_sets_cover_the_declined_prefixes(self):
        assert IDENTITY_FAULTS == {"cut", "byzantine"}
        assert IDENTITY_INITS == {"doped", "graph"}


class TestExactRegime:
    """Below ``leap_threshold`` the count engine *is* the indexed
    engine: same seed, same trajectory, bit for bit."""

    def test_bit_identical_to_indexed(self):
        for seed in range(5):
            cnt = CountSimulator(seed=seed).run(SimpleGlobalLine(), 9, None)
            idx = IndexedSimulator(seed=seed).run(SimpleGlobalLine(), 9, None)
            assert cnt.steps == idx.steps
            assert cnt.effective_steps == idx.effective_steps
            assert cnt.last_change_step == idx.last_change_step
            assert cnt.config.census() == idx.config.census()

    def test_bit_identical_under_faults(self):
        scenario = Scenario(faults=("crash:count=2,at=50",))
        for seed in range(3):
            cnt = CountSimulator(seed=seed, faults=scenario.make_faults()).run(
                FTGlobalLine(), 10, 500_000
            )
            idx = IndexedSimulator(seed=seed, faults=scenario.make_faults()).run(
                FTGlobalLine(), 10, 500_000
            )
            assert cnt.steps == idx.steps
            assert cnt.config.census() == idx.config.census()

    def test_threshold_is_configurable(self):
        assert CountSimulator(seed=0).leap_threshold == (
            CountSimulator.DEFAULT_LEAP_THRESHOLD
        )
        assert CountSimulator(seed=0, leap_threshold=17).leap_threshold == 17


class TestLeapRegime:
    """``leap_threshold=0`` forces the tau-leaped census path."""

    def test_leap_hook_observes_batched_steps(self):
        sim = CountSimulator(seed=1, leap_threshold=0)
        leaps = []
        sim.leap_hook = lambda steps, counts, ends, k: leaps.append(k)
        result = sim.run(SimpleGlobalLine(), 64, 10_000_000)
        assert result.converged
        assert leaps and all(k >= 1 for k in leaps)
        # Batching is the point: far fewer leaps than scheduler steps.
        assert len(leaps) < result.steps

    def test_epidemic_mean_matches_closed_form(self):
        # The one-way epidemic is census-Markov (no edges), so the leap
        # regime samples the exact process; the mean must match the
        # closed-form coupon-collector expectation like any engine.
        n, trials = 12, 300
        exact = one_way_epidemic_expectation(n)
        times = [
            CountSimulator(seed=s, leap_threshold=0)
            .run(OneWayEpidemic(), n, None)
            .last_change_step
            for s in range(trials)
        ]
        mean = statistics.fmean(times)
        assert abs(mean - exact) / exact < 0.1, (mean, exact)

    def test_nonuniform_initial_configuration_is_honored(self):
        # Regression: the leap path must take the census of an
        # overridden initial_configuration (one seeded infection), not
        # assume the all-initial_state uniform start — which would be
        # quiescent at step 0 here.
        result = CountSimulator(seed=0, leap_threshold=0).run(
            OneWayEpidemic(), 12, None
        )
        assert result.steps > 0
        assert result.config.count_in_state("a") == 12

    def test_line_family_converges_structurally(self):
        for seed in range(5):
            result = CountSimulator(seed=seed, leap_threshold=0).run(
                SimpleGlobalLine(), 120, 10**11, require_convergence=False
            )
            assert result.converged, result.stop_reason
            census = result.config.census()
            census.validate()
            # A spanning line: n-1 active edges over the alive nodes.
            assert result.config.n_active_edges == 119

    def test_crash_faults_hold_census_invariants(self):
        scenario = Scenario(faults=("crash:count=2,at=50",))
        for seed in range(3):
            sim = CountSimulator(
                seed=seed, faults=scenario.make_faults(), leap_threshold=0
            )
            result = sim.run(
                FTGlobalLine(), 60, 10**10, require_convergence=False
            )
            config = result.config
            dead = [u for u in range(config.n) if config.state(u) == DEAD]
            assert len(dead) == 2
            assert all(not config.neighbors(u) for u in dead)
            config.census().validate()

    def test_arrivals_grow_the_census(self):
        scenario = Scenario(faults=("arrive:count=3,at=100",))
        sim = CountSimulator(
            seed=2, faults=scenario.make_faults(), leap_threshold=0
        )
        result = sim.run(
            SimpleGlobalLine(), 50, 10**10, require_convergence=False
        )
        assert result.config.n == 53

    def test_inert_protocol_is_quiescent_immediately(self):
        class Inert(SimpleGlobalLine):
            def delta(self, a, b, c):
                return None

        result = CountSimulator(seed=0, leap_threshold=0).run(
            Inert(), 100, 10_000
        )
        assert result.converged and result.steps == 0


def _times(engine, protocol_factory, n, scenario, budget, seeds, *,
           require_convergence=True):
    """Convergence-measure samples of one engine over a scenario."""
    times = []
    for seed in seeds:
        sim = make_scenario_engine(engine, seed, scenario)
        result = sim.run(
            protocol_factory(), n, budget,
            require_convergence=require_convergence,
        )
        times.append(result.last_output_change_step)
    return times


class TestDistributionalEquivalence:
    """The seeded KS gate of the acceptance criteria: the count engine
    must sample the same law as the indexed engine, on the faultless
    Figure-2 line and under census-wise faults.  Disjoint seed ranges
    make the samples independent; at these populations the count engine
    is in its exact regime, which is precisely the regime the gate
    certifies (the leap regime is gated by the census-Markov and
    structural tests above)."""

    TRIALS = 250

    def _check(self, protocol_factory, n, scenario, budget, *,
               require_convergence=True):
        from scipy.stats import ks_2samp

        cnt = _times(
            "count", protocol_factory, n, scenario, budget,
            range(self.TRIALS), require_convergence=require_convergence,
        )
        idx = _times(
            "indexed", protocol_factory, n, scenario, budget,
            range(10_000, 10_000 + self.TRIALS),
            require_convergence=require_convergence,
        )
        idx_median = statistics.median(idx)
        median = statistics.median(cnt)
        assert abs(idx_median - median) / idx_median < 0.3, (
            idx_median, median,
        )
        statistic, p_value = ks_2samp(cnt, idx)
        assert p_value > 0.001, (statistic, p_value)

    def test_figure2_line_faultless(self):
        self._check(SimpleGlobalLine, 8, Scenario(), 500_000)

    def test_crash_with_notifications(self):
        self._check(
            FTGlobalLine, 10,
            Scenario(faults=("crash:count=2,at=50",)), 500_000,
        )

    def test_arrivals(self):
        self._check(
            SimpleGlobalLine, 6,
            Scenario(faults=("arrive:count=3,at=100",)), 500_000,
        )

    def test_churn(self):
        # Churn is unbounded, so runs are budget-bounded and compared on
        # the last output change inside the window.
        self._check(
            FTGlobalLine, 8,
            Scenario(faults=("churn:rate=0.0001",)), 100_000,
            require_convergence=False,
        )

    def test_edge_rate(self):
        self._check(
            SimpleGlobalLine, 8,
            Scenario(faults=("edge-rate:rate=0.0001",)), 100_000,
        )


# ----------------------------------------------------------------------
# Census round-trip properties
# ----------------------------------------------------------------------

@st.composite
def configurations(draw):
    states = draw(
        st.lists(st.sampled_from("abc"), min_size=1, max_size=8)
    )
    n = len(states)
    pairs = list(itertools.combinations(range(n), 2))
    mask = draw(
        st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs))
    )
    return Configuration(
        states, [p for p, on in zip(pairs, mask) if on]
    )


class TestCensusRoundTrip:
    """Census <-> Configuration conservation (the reconstruction is
    census-faithful, not geometry-faithful — anonymity)."""

    @given(configurations())
    @settings(max_examples=80, deadline=None)
    def test_reconstruction_is_census_identical(self, cfg):
        census = cfg.census()
        census.validate()
        assert census.population == cfg.n
        assert census.n_edges == cfg.n_active_edges
        rebuilt = Configuration.from_census(census)
        assert rebuilt.census() == census

    @given(
        configurations(),
        st.lists(
            st.tuples(st.sampled_from("mkd"), st.integers(0, 10**6)),
            max_size=6,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_mutations_conserve_the_census_totals(self, cfg, ops):
        # m: move a node to a fresh state, k: add a node (arrival),
        # d: mark a node DEAD (the crash/revive census bookkeeping).
        for op, pick in ops:
            if op == "k":
                cfg.add_node("a")
            else:
                u = pick % cfg.n
                cfg.set_state(u, DEAD if op == "d" else "z")
        census = cfg.census()
        assert census.population == cfg.n
        assert sum(
            c for s, c in census.counts.items() if s != DEAD
        ) == cfg.n - census.counts.get(DEAD, 0)
        assert census.n_edges == cfg.n_active_edges
        assert Configuration.from_census(census).census() == census

    @given(configurations())
    @settings(max_examples=80, deadline=None)
    def test_derive_edge_census_conserves_totals(self, cfg):
        census = cfg.census()
        counts = dict(census.counts)
        ends: dict = {}
        for (a, b), e in census.edges.items():
            ends[a] = ends.get(a, 0) + e
            ends[b] = ends.get(b, 0) + e
        derived = derive_edge_census(counts, ends, census.n_edges)
        assert sum(derived.values()) == census.n_edges
        for (a, b), e in derived.items():
            assert (a, b) == census_pair_key(a, b)
            assert 0 <= e <= census.class_pairs(a, b)

    @given(
        st.dictionaries(
            st.sampled_from("abc"), st.integers(0, 20),
            min_size=1, max_size=3,
        ),
        st.integers(0, 60),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_census_sample_states_is_hypergeometric_shaped(
        self, counts, k, seed
    ):
        total = sum(counts.values())
        rng = random.Random(seed)
        if k > total:
            with pytest.raises(SimulationError):
                census_sample_states(counts, k, rng)
            return
        drawn = census_sample_states(counts, k, rng)
        assert sum(drawn.values()) == k
        for s, c in drawn.items():
            assert 0 < c <= counts[s]
