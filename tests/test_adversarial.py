"""The adversarial fault axis: byzantine nodes, per-edge failure,
targeted schedulers, edge-loss notifications, and the redundancy-coded
line constructor.

Complements ``test_population_faults.py`` (crash / arrive / churn) with
the strictly nastier adversaries: state lies, silent edge-flag lies,
independent link failure, and schedulers that read the live
configuration to starve whoever currently leads.
"""

from __future__ import annotations

import random

import pytest

from repro.core.configuration import Configuration
from repro.core.errors import SimulationError
from repro.core.faults import DEAD, FAULTS, compact_survivors
from repro.core.graphs import is_spanning_line
from repro.core.params import SpecError
from repro.core.protocol import Protocol
from repro.core.scenario import Scenario, make_scenario_engine, resolve_engine
from repro.core.scheduler import SCHEDULERS
from repro.core.simulator import ENGINES, make_engine, run_to_convergence
from repro.protocols import RCGlobalLine, registry
from repro.protocols.registry import RegistryError

ALL_ENGINES = sorted(ENGINES)


class Recorder(Protocol):
    """Inert line of ``a`` nodes that marks edge-loss notifications.

    No rule ever fires, so the only way a node can leave ``a`` is the
    ``on_edge_loss`` write-back — which makes notification delivery
    directly observable in the final configuration.
    """

    name = "recorder"
    initial_state = "a"
    states = frozenset({"a", "x"})

    def delta(self, a, b, c):
        return None

    def on_edge_loss(self, state):
        return "x" if state == "a" else None

    def initial_configuration(self, n):
        return Configuration(
            ["a"] * n, [(u, u + 1) for u in range(n - 1)]
        )


# ----------------------------------------------------------------------
# Byzantine faults
# ----------------------------------------------------------------------

class TestByzantineFaults:
    def test_registry_spec_and_alias(self):
        assert FAULTS.canonical("byz:count=2") == (
            "byzantine:count=2,lie=0.5,mode=random-state,rate=0.0001"
        )

    def test_validation_errors_are_registry_shaped(self):
        with pytest.raises(SpecError, match="must be >= 1"):
            FAULTS.instantiate("byzantine:count=0")
        with pytest.raises(SpecError, match="expects probability"):
            FAULTS.instantiate("byzantine:rate=1.5")
        with pytest.raises(SimulationError, match="unknown byzantine mode"):
            FAULTS.instantiate("byzantine:mode=weird")
        with pytest.raises(SimulationError, match="edge-lie probability"):
            FAULTS.instantiate("byzantine:lie=2")

    def test_compile_requires_the_protocol_under_attack(self):
        model = FAULTS.instantiate("byzantine")
        with pytest.raises(SimulationError, match="protocol-aware"):
            model.compile(8, random.Random(0))

    def test_random_state_needs_enumerable_states(self):
        class Structured(Protocol):
            name = "structured"
            initial_state = ("a", 0)

            def delta(self, a, b, c):
                return None

        model = FAULTS.instantiate("byzantine:mode=random-state")
        with pytest.raises(SimulationError, match="enumerable"):
            model.compile(8, random.Random(0), protocol=Structured())

    def test_always_leader_needs_leader_states(self):
        model = FAULTS.instantiate("byzantine:mode=always-leader")
        with pytest.raises(SimulationError, match="leader_states"):
            model.compile(8, random.Random(0), protocol=Recorder())

    def test_replay_mode_replays_the_previous_lie_snapshot(self):
        model = FAULTS.instantiate("byzantine:count=1,mode=replay,lie=0,rate=0.5")
        plan = model.compile(1, random.Random(3), protocol=Recorder())
        config = Configuration(["a"], [])
        step = plan.next_step(-1)
        first = plan.actions_at(step, config, alive=[0])
        # First lie falls back to the initial state...
        assert [a.kind for a in first] == ["corrupt"]
        assert first[0].states == ("a",)
        # ...then replays whatever the victim held at the previous lie.
        config.set_state(0, "x")
        step = plan.next_step(step)
        second = plan.actions_at(step, config, alive=[0])
        assert second[0].states == ("a",)
        config.set_state(0, "a")
        step = plan.next_step(step)
        third = plan.actions_at(step, config, alive=[0])
        assert third[0].states == ("x",)

    def test_always_leader_claims_a_leader_state(self):
        ft = registry.instantiate("ft-global-line")
        model = FAULTS.instantiate(
            "byzantine:count=1,mode=always-leader,lie=0,rate=0.5"
        )
        plan = model.compile(4, random.Random(0), protocol=ft)
        config = ft.initial_configuration(4)
        step = plan.next_step(-1)
        actions = plan.actions_at(step, config, alive=range(4))
        assert actions[0].states[0] in ft.leader_states

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_same_seed_same_byzantine_run(self, engine):
        scenario = Scenario(faults=("byzantine:count=2,rate=0.01",))
        if not ENGINES[engine].supports(scenario):
            pytest.skip(f"{engine} declines identity-based faults")
        signatures = []
        for _ in range(2):
            sim = make_scenario_engine(engine, 7, scenario)
            result = sim.run(
                registry.instantiate("ft-global-line"), 8, 30_000,
                require_convergence=False,
            )
            signatures.append(result.config.signature())
        assert signatures[0] == signatures[1]

    def test_silent_edge_lies_bypass_the_notification_hook(self):
        # Every node byzantine, every lie also drops an incident edge
        # (lie=1).  Replay lies on the inert Recorder are identity state
        # writes, so any 'x' in the final configuration could only come
        # from a (wrongly) delivered edge-loss notification.
        scenario = Scenario(
            faults=("byzantine:count=6,mode=replay,lie=1,rate=0.01",)
        )
        sim = make_scenario_engine("indexed", 11, scenario)
        result = sim.run(Recorder(), 6, 50_000, require_convergence=False)
        assert result.config.n_active_edges < 5  # edges did get dropped
        assert result.config.count_in_state("x") == 0


# ----------------------------------------------------------------------
# Per-edge independent failure (edge-rate)
# ----------------------------------------------------------------------

class TestEdgeRateFaults:
    def test_validation(self):
        with pytest.raises(SpecError, match="probability"):
            FAULTS.instantiate("edge-rate:rate=1.5")
        assert FAULTS.canonical("edge-failure:rate=0.01") == (
            "edge-rate:rate=0.01"
        )

    def test_event_gap_matches_the_union_clock(self):
        # First-event times are geometric with p = 1 - (1-rate)^m; the
        # empirical mean gap must track 1/p.
        import math

        rate, n = 0.001, 8
        m = n * (n - 1) // 2
        p_total = -math.expm1(m * math.log1p(-rate))
        model = FAULTS.instantiate(f"edge-rate:rate={rate}")
        rng = random.Random(5)
        gaps, last = [], 0
        plan = model.compile(n, rng)
        for _ in range(4000):
            step = plan.next_step(last)
            gaps.append(step - last)
            last = step
        mean = sum(gaps) / len(gaps)
        assert abs(mean - 1 / p_total) / (1 / p_total) < 0.1

    def test_actions_cut_only_live_active_edges(self):
        model = FAULTS.instantiate("edge-rate:rate=0.01")
        plan = model.compile(6, random.Random(2))
        config = Configuration(
            ["a", "a", "a", DEAD, "a", "a"],
            [(0, 1), (2, 3), (3, 4)],
        )
        seen = set()
        step = -1
        for _ in range(500):
            step = plan.next_step(step)
            for action in plan.actions_at(step, config, alive=[0, 1, 2, 4, 5]):
                assert action.kind == "cut" and not action.silent
                seen.update(action.edges)
        # Only the live active edge is ever cut; pairs touching the
        # DEAD node and inactive pairs are no-ops.
        assert seen == {(0, 1)}


# ----------------------------------------------------------------------
# Targeted adaptive schedulers
# ----------------------------------------------------------------------

class TestTargetedScheduler:
    def test_validation(self):
        with pytest.raises(SimulationError, match="unknown targeted aim"):
            SCHEDULERS.instantiate("targeted:aim=sideways")
        with pytest.raises(SimulationError, match="bias"):
            SCHEDULERS.instantiate("targeted:bias=1.0")
        assert SCHEDULERS.canonical("adversarial-targeted") == (
            "targeted:aim=leader,bias=0.9"
        )

    def test_needs_the_live_configuration(self):
        scheduler = SCHEDULERS.instantiate("targeted")
        with pytest.raises(SimulationError, match="adaptive"):
            next(scheduler.pairs(8, random.Random(0)))

    def test_event_engines_decline_and_route_to_sequential(self):
        scenario = Scenario(scheduler="targeted:aim=leader")
        for engine in ("indexed", "agitated"):
            assert not ENGINES[engine].supports(scenario)
            assert resolve_engine(engine, scenario, warn=False) == "sequential"
        with pytest.raises(SimulationError, match="does not support"):
            make_scenario_engine("indexed", 0, scenario)

    @pytest.mark.parametrize("aim", ["leader", "bridge"])
    def test_starved_construction_still_converges(self, aim):
        # Fair-with-probability-1: the adversary may slow the line down
        # but cannot stop it.
        scenario = Scenario(scheduler=f"targeted:aim={aim}")
        sim = make_scenario_engine("sequential", 1, scenario)
        protocol = registry.instantiate("simple-global-line")
        result = sim.run(protocol, 8, 3_000_000, require_convergence=False)
        assert result.converged
        assert protocol.target_reached(result.config)

    def test_leader_aim_tracks_declared_leader_states(self):
        scheduler = SCHEDULERS.instantiate("targeted:aim=leader,bias=0.99")
        protocol = registry.instantiate("ft-global-line")
        config = Configuration(["l", "q0", "q0", "q0"], [])
        rng = random.Random(0)
        stream = scheduler.pairs(4, rng, config=config, protocol=protocol)
        picks = [next(stream) for _ in range(2000)]
        touching = sum(1 for u, v in picks if 0 in (u, v))
        # Uniform touches node 0 in half the picks; the single biased
        # re-draw halves that (0.5 * 0.99 * 0.5 + 0.5 * 0.01 ~ 0.25).
        assert touching / len(picks) < 0.35


# ----------------------------------------------------------------------
# Edge-loss notifications across engines
# ----------------------------------------------------------------------

class TestEdgeLossNotifications:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_cut_notifies_both_endpoints(self, engine):
        scenario = Scenario(faults=("cut:edges=1-2,at=5",))
        if not ENGINES[engine].supports(scenario):
            pytest.skip(f"{engine} declines identity-based faults")
        sim = make_scenario_engine(engine, 0, scenario)
        result = sim.run(Recorder(), 4, 1_000, require_convergence=False)
        config = result.config
        assert config.edge_state(1, 2) == 0
        assert [config.state(u) for u in range(4)] == ["a", "x", "x", "a"]

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_edge_drop_notifies_until_no_edges_remain(self, engine):
        scenario = Scenario(faults=("edge-drop:rate=0.05",))
        if not ENGINES[engine].supports(scenario):
            pytest.skip(f"{engine} declines identity-based faults")
        sim = make_scenario_engine(engine, 1, scenario)
        result = sim.run(Recorder(), 5, 50_000, require_convergence=False)
        config = result.config
        assert config.n_active_edges == 0
        # Every node sat on at least one dropped edge, so every node
        # was notified exactly as the hook prescribes.
        assert config.count_in_state("x") == 5

    def test_default_protocols_ignore_edge_loss(self):
        protocol = registry.instantiate("simple-global-line")
        assert protocol.on_edge_loss("q2") is None


# ----------------------------------------------------------------------
# The redundancy-coded line
# ----------------------------------------------------------------------

class TestRCGlobalLine:
    def test_registry_spec_aliases_and_params(self):
        assert registry.canonical_spec("rc-global-line") == "rc-global-line:k=2"
        assert registry.canonical_spec(
            "redundancy-coded-global-line"
        ) == "rc-global-line:k=2"
        with pytest.raises(RegistryError, match="must be >= 0"):
            registry.instantiate("rc-global-line:k=-1")

    def test_state_count_is_3k_plus_7(self):
        for k in (0, 1, 2, 3):
            protocol = RCGlobalLine(k=k)
            assert len(protocol.states) == 3 * k + 7

    def test_faultless_construction_reaches_the_coded_target(self):
        protocol = RCGlobalLine()
        result = run_to_convergence(protocol, 16, seed=0)
        assert result.converged
        assert protocol.target_reached(result.config)
        # Exactly k isolated spares, distinct indices, off the line.
        spares = [
            u for u in range(16)
            if result.config.state(u) in protocol._spare_states
        ]
        assert len(spares) == protocol.k
        assert all(result.config.degree(u) == 0 for u in spares)

    def test_k0_degenerates_to_a_plain_line(self):
        protocol = RCGlobalLine(k=0)
        result = run_to_convergence(protocol, 10, seed=1)
        assert result.converged
        assert is_spanning_line(result.config.output_graph())

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_survives_mid_run_crashes(self, engine):
        protocol = RCGlobalLine()
        scenario = Scenario(faults=("crash:count=2,at=2000",))
        sim = make_scenario_engine(engine, 3, scenario)
        result = sim.run(protocol, 12, 5_000_000, require_convergence=False)
        assert result.converged
        assert protocol.target_reached(compact_survivors(result.config))

    def test_survives_sustained_edge_drop(self):
        protocol = RCGlobalLine()
        scenario = Scenario(faults=("edge-drop:rate=0.0002",))
        sim = make_scenario_engine("indexed", 5, scenario)
        result = sim.run(protocol, 16, 10_000_000, require_convergence=False)
        assert result.converged
        assert protocol.target_reached(compact_survivors(result.config))

    def test_survives_byzantine_state_lies(self):
        protocol = RCGlobalLine()
        scenario = Scenario(faults=("byzantine:count=1,rate=0.0001,lie=0",))
        sim = make_scenario_engine("indexed", 7, scenario)
        result = sim.run(protocol, 16, 10_000_000, require_convergence=False)
        assert result.converged
        assert protocol.target_reached(compact_survivors(result.config))

    def test_leader_states_cover_both_flavors(self):
        protocol = RCGlobalLine(k=1)
        assert protocol.leader_states == {"l0", "l1", "f0", "f1"}

    def test_stabilized_rejects_edged_spares(self):
        protocol = RCGlobalLine(k=1)
        # A spare holding an active edge could still fire a sanitizer:
        # the certificate must not declare this stable.
        bad = Configuration(["l1", "q1", "s1"], [(0, 1), (1, 2)])
        assert not protocol.stabilized(bad)
        good = Configuration(["l1", "q1", "s1"], [(0, 1)])
        assert protocol.stabilized(good)
        assert protocol.target_reached(good)


# ----------------------------------------------------------------------
# A small end-to-end dominance run
# ----------------------------------------------------------------------

class TestAdversarialDominance:
    def test_rc_dominates_simple_under_crash_load(self):
        from repro.analysis.robustness import RobustnessSpec, run_robustness

        spec = RobustnessSpec(
            protocols=("simple-global-line", "rc-global-line"),
            loads=(0, 2),
            n=12,
            trials=2,
            faults="crash",
            max_steps=5_000_000,
        )
        result = run_robustness(spec)
        assert result.survival_rate("rc-global-line", 2) == 1.0
        assert result.dominates("rc-global-line", "simple-global-line")
        assert not result.dominates("simple-global-line", "rc-global-line")

    def test_targeted_scheduler_threads_through_the_spec(self):
        from repro.analysis.robustness import RobustnessSpec, run_robustness

        spec = RobustnessSpec(
            protocols=("rc-global-line",),
            loads=(0,),
            n=8,
            trials=1,
            faults="crash",
            scheduler="targeted:aim=leader",
            max_steps=3_000_000,
        )
        assert spec.scheduler == "targeted:aim=leader,bias=0.9"
        result = run_robustness(spec)
        assert result.records[0].survived
