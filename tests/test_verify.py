"""The static verifier: rule-table lints, the symmetry-reduced model
checker, counterexample replay, and the verdict cache.

The registry-wide parametrizations mirror the ``static-lints`` /
``model-check`` conformance cells but bind the verifier API directly,
so a verifier regression points here rather than at the conformance
harness.  The mutant tests are the suite's teeth: seeded single-rule
deletions of Simple-Global-Line must be *rejected* with an executable
counterexample that replays through the sequential engine to the exact
violating configuration.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.protocol import Protocol, TableProtocol, deterministic
from repro.protocols import registry
from repro.protocols.registry import RegistryError, target_predicate
from repro.verify import (
    LINT_CODES,
    VerifyCache,
    VerifyError,
    canonicalize,
    explore,
    model_check,
    protocol_digest,
    reachable_abstraction,
    replay_counterexample,
    run_lints,
    strongly_connected_components,
)
from repro.viz import trace_to_dot, trace_to_dot_frames

ALL_SPECS = tuple(sorted(registry.names()))


def _enumerable(spec: str):
    protocol = registry.instantiate(spec)
    if protocol.states is None:
        pytest.skip(f"{spec}: structured state space (states=None)")
    return protocol


# ----------------------------------------------------------------------
# Registry-wide sweeps
# ----------------------------------------------------------------------

@pytest.mark.parametrize("spec", ALL_SPECS)
def test_registry_protocol_lints_clean(spec):
    protocol = _enumerable(spec)
    report = run_lints(protocol)
    assert report.ok, report.summary()


@pytest.mark.parametrize("spec", ALL_SPECS)
def test_registry_protocol_model_checks_at_n4(spec):
    protocol = _enumerable(spec)
    try:
        report = model_check(protocol, 4, max_configs=60_000)
    except VerifyError as exc:
        pytest.skip(str(exc))
    assert report.ok, report.summary()


def test_neighbor_doubling_model_checks_at_its_minimum_population():
    """Regression: the center is found by state, not by node id — the
    canonical quotient relabels nodes, which used to make the terminal
    configuration 'fail' the target purely because the center was no
    longer node 0."""
    report = model_check(registry.instantiate("neighbor-doubling"), 9)
    assert report.ok, report.summary()
    assert report.n_terminal_sccs == 1


# ----------------------------------------------------------------------
# The acceptance proof: Simple-Global-Line at n=5
# ----------------------------------------------------------------------

def test_simple_global_line_every_terminal_scc_is_a_line_at_n5():
    protocol = registry.instantiate("simple-global-line")
    report = model_check(protocol, 5)
    assert report.ok, report.summary()
    assert report.target == "spanning-line"
    assert report.n_terminal_sccs == 1
    # Exhaustively re-verify the terminal members against the predicate
    # the registry bound — the proof the summary line claims.
    graph = explore(protocol, 5)
    sccs = strongly_connected_components(graph.succ)
    predicate = target_predicate(protocol)
    terminal = [
        component for component in sccs
        if all(child in component for key in component
               for child in graph.succ[key])
    ]
    assert len(terminal) == 1
    for key in terminal[0]:
        assert predicate(graph.configuration_of(key))


def test_ft_and_rc_line_survive_one_edge_deletion():
    for spec in ("ft-global-line", "rc-global-line"):
        report = model_check(registry.instantiate(spec), 5)
        assert report.ok, report.summary()
        assert "edge-loss-recovery" in report.checked


# ----------------------------------------------------------------------
# Mutants: seeded rule deletions must be rejected with replayable
# counterexamples
# ----------------------------------------------------------------------

#: Single-rule deletions of Simple-Global-Line that break the target at
#: n=5.  Deleting ('w', 'q2', 1) — the leader's walk — is *not* here:
#: a merge whose walker cannot move still leaves a spanning line, so
#: the graph-shape target legitimately survives it at small n.
BREAKING_DELETIONS = (
    ("q0", "q0", 0),
    ("l", "q0", 0),
    ("l", "l", 0),
    ("w", "q1", 1),
)


def _mutant(deleted):
    base = registry.instantiate("simple-global-line")
    rules = dict(base.rules())
    del rules[deleted]
    return TableProtocol(
        name=f"sgl-minus-{deleted}", initial_state="q0", rules=rules
    )


@pytest.mark.parametrize("deleted", BREAKING_DELETIONS)
def test_mutant_rule_deletions_are_rejected(deleted):
    report = model_check(_mutant(deleted), 5, target="spanning-line")
    assert not report.ok
    kinds = {violation.kind for violation in report.violations}
    assert "terminal-scc" in kinds
    witness = next(
        v.counterexample for v in report.violations
        if v.counterexample is not None
    )
    # Deleting the pairing rule freezes the initial configuration, so
    # its witness is legitimately the empty schedule; every other
    # deletion needs actual interactions to reach the bad terminal.
    if deleted != ("q0", "q0", 0):
        assert witness.events, "counterexample must be a non-empty schedule"
    assert not registry.TARGETS["spanning-line"](
        _mutant(deleted), witness.final_configuration()
    )


def test_seeded_mutant_sample_is_rejected():
    # n=5, not 4: with an even population every node pairs up and two
    # 2-lines merge into a spanning line without the growth rule, so
    # its deletion is only observable at odd n.
    rng = random.Random(0x5EED)
    for deleted in rng.sample(BREAKING_DELETIONS, 2):
        report = model_check(_mutant(deleted), 5, target="spanning-line")
        assert not report.ok, f"deleting {deleted} must be caught at n=5"


def test_walk_rule_deletion_survives_the_graph_target():
    report = model_check(_mutant(("w", "q2", 1)), 5, target="spanning-line")
    assert report.ok, report.summary()


def test_mutant_counterexample_replays_through_the_sequential_engine():
    """The witness is an executable schedule, not just an abstract
    path: driving the sequential engine with the scripted scheduler
    over the witnessed picks reproduces the violating configuration."""
    mutant = _mutant(("l", "l", 0))
    report = model_check(mutant, 5, target="spanning-line")
    assert not report.ok
    witness = report.violations[0].counterexample
    assert witness is not None
    result = replay_counterexample(mutant, witness)
    assert (
        result.config.signature()
        == witness.final_configuration().signature()
    )
    # And the replayed endpoint really does violate the target.
    predicate = registry.TARGETS["spanning-line"]
    assert not predicate(mutant, result.config)


def test_counterexample_renders_via_the_trace_machinery():
    mutant = _mutant(("l", "l", 0))
    report = model_check(mutant, 5, target="spanning-line")
    witness = report.violations[0].counterexample
    trace = witness.to_trace()
    assert len(trace.snapshots) == len(witness.events) + 1
    frames = trace_to_dot_frames(trace, name="cex")
    assert len(frames) == len(trace.snapshots)
    document = trace_to_dot(trace, name="cex")
    assert document.count("graph cex_") == len(frames)
    assert "frame 0: initial configuration" in document
    listing = witness.format()
    assert "terminal-scc" in listing and "step 1" in listing


# ----------------------------------------------------------------------
# Lints: one ad-hoc broken protocol per finding code
# ----------------------------------------------------------------------

def _codes(report):
    return {finding.code for finding in report.findings}


class TestLintFindings:
    def test_unreachable_state_and_dead_rule(self):
        protocol = TableProtocol(
            name="dead-wing", initial_state="a",
            rules={
                ("a", "a", 0): ("b", "b", 1),
                # 'z' never arises, so this rule can never fire.
                ("z", "a", 0): ("z", "z", 1),
            },
        )
        report = run_lints(protocol)
        assert _codes(report) == {"unreachable-state", "dead-rule"}
        subjects = {finding.subject for finding in report.findings}
        assert "'z'" in subjects

    def test_effectless_rule(self):
        protocol = TableProtocol(
            name="noop", initial_state="a",
            rules={
                ("a", "a", 0): ("a", "a", 0),
                ("a", "b", 0): ("b", "b", 1),
            },
        )
        report = run_lints(protocol)
        assert "effectless-rule" in _codes(report)

    def test_orientation_conflict(self):
        class BadSym(Protocol):
            name = "badsym"
            initial_state = "a"
            states = frozenset({"a", "b"})

            def delta(self, a, b, c):
                if (a, b, c) == ("a", "b", 0):
                    return deterministic("a", "a", 1)
                if (a, b, c) == ("b", "a", 0):
                    return deterministic("b", "b", 1)
                return None

        report = run_lints(BadSym())
        assert "orientation-conflict" in _codes(report)

    def test_unused_leader_state(self):
        protocol = TableProtocol(
            name="wannabe", initial_state="a",
            rules={("a", "a", 0): ("b", "b", 1)},
        )
        protocol.leader_states = frozenset({"king"})
        report = run_lints(protocol)
        assert "unused-leader-state" in _codes(report)

    def test_missing_hook_for_claimed_fault_family(self):
        protocol = TableProtocol(
            name="braggart", initial_state="a",
            rules={("a", "a", 0): ("b", "b", 1)},
        )
        protocol.fault_claims = ("edge-loss",)
        report = run_lints(protocol)
        findings = [
            f for f in report.findings if f.code == "missing-hook"
        ]
        # 'b' holds edges but on_edge_loss returns None for it.
        assert any("'b'" in f.subject for f in findings)

    def test_unknown_fault_claim_is_a_finding(self):
        protocol = TableProtocol(
            name="confused", initial_state="a",
            rules={("a", "a", 0): ("b", "b", 1)},
        )
        protocol.fault_claims = ("meteor-strike",)
        report = run_lints(protocol)
        assert any(
            f.code == "missing-hook" and f.subject == "meteor-strike"
            for f in report.findings
        )

    def test_waivers_suppress_by_code_and_by_subject(self):
        def fresh():
            protocol = TableProtocol(
                name="waived", initial_state="a",
                rules={
                    ("a", "a", 0): ("b", "b", 1),
                    ("z", "a", 0): ("z", "z", 1),
                },
            )
            return protocol

        bare = run_lints(fresh())
        assert not bare.ok and len(bare.findings) == 2

        by_code = fresh()
        by_code.lint_waivers = frozenset({"unreachable-state", "dead-rule"})
        report = run_lints(by_code)
        assert report.ok and len(report.waived) == 2

        by_subject = fresh()
        by_subject.lint_waivers = frozenset({"unreachable-state:'z'"})
        report = run_lints(by_subject)
        assert len(report.findings) == 1
        assert report.findings[0].code == "dead-rule"
        assert len(report.waived) == 1

    def test_structured_protocols_are_rejected_not_guessed(self):
        with pytest.raises(VerifyError, match="states=None"):
            run_lints(registry.instantiate("universal"))

    def test_lint_codes_registry_is_exact(self):
        assert LINT_CODES == (
            "unreachable-state",
            "dead-rule",
            "effectless-rule",
            "orientation-conflict",
            "unused-leader-state",
            "missing-hook",
        )

    def test_fault_claim_hooks_extend_the_census(self):
        """FT-Global-Line's reset state is reachable only *through* the
        crash/cut notification — the claim closure is what keeps its
        restart rules from reading as dead."""
        protocol = registry.instantiate("ft-global-line")
        abstraction = reachable_abstraction(protocol)
        assert "r" in abstraction.states
        unclaimed = registry.instantiate("ft-global-line")
        unclaimed.fault_claims = ()
        bare = reachable_abstraction(unclaimed)
        assert "r" not in bare.states


# ----------------------------------------------------------------------
# Model checker internals
# ----------------------------------------------------------------------

class TestModelChecker:
    def test_canonicalization_is_permutation_invariant(self):
        states = (2, 0, 1, 0)
        edges = {(0, 1), (2, 3)}
        key, _ = canonicalize(states, edges)
        # Relabel by an arbitrary permutation and re-canonicalize.
        perm = (3, 1, 0, 2)
        permuted_states = [0] * 4
        for u in range(4):
            permuted_states[perm[u]] = states[u]
        permuted_edges = {
            (min(perm[u], perm[v]), max(perm[u], perm[v]))
            for u, v in edges
        }
        key2, _ = canonicalize(tuple(permuted_states), permuted_edges)
        assert key == key2

    def test_unsound_certificate_is_a_fairness_violation(self):
        class Unsound(TableProtocol):
            def __init__(self):
                super().__init__(
                    name="unsound", initial_state="a",
                    rules={("a", "a", 0): ("b", "b", 1)},
                )

            def stabilized(self, config):
                return True  # accepts even before the edge appears

        report = model_check(Unsound(), 3)
        kinds = {violation.kind for violation in report.violations}
        assert "fairness-closure" in kinds
        witness = next(
            v.counterexample for v in report.violations
            if v.kind == "fairness-closure"
        )
        # The witness ends one step past the output-changing interaction.
        assert witness.events[-1].edge_changed

    def test_flickering_but_output_sound_certificate_passes(self):
        """Graph-Replication's certificate revokes mid-copy while the
        output graph stays fixed — output-stability, the paper's actual
        notion, must accept that (regression for the overly-strict
        one-step closure)."""
        report = model_check(registry.instantiate("graph-replication"), 8)
        assert report.ok, report.summary()

    def test_fragile_line_fails_edge_loss_recovery(self):
        """Simple-Global-Line's rules with an edge-loss *claim* bolted
        on: a cut strands a leaderless fragment no rule can reabsorb —
        exactly the wreck FTGlobalLine's restart wave exists to fix."""
        class BrittleLine(TableProtocol):
            fault_claims = ("edge-loss",)

            def __init__(self):
                base = registry.instantiate("simple-global-line")
                super().__init__(
                    name="brittle-line",
                    initial_state="q0",
                    rules=dict(base.rules()),
                )

        report = model_check(BrittleLine(), 4, target="spanning-line")
        kinds = {violation.kind for violation in report.violations}
        assert "edge-loss-recovery" in kinds
        witness = next(
            v.counterexample for v in report.violations
            if v.kind == "edge-loss-recovery"
        )
        # The witness starts at the post-damage configuration and the
        # damaged run replays through the engine like any other.
        result = replay_counterexample(BrittleLine(), witness)
        assert (
            result.config.signature()
            == witness.final_configuration().signature()
        )

    def test_explore_rejects_structured_and_oversized(self):
        with pytest.raises(VerifyError, match="states=None"):
            explore(registry.instantiate("line-tm"), 4)
        with pytest.raises(VerifyError, match="max_configs"):
            model_check(
                registry.instantiate("global-star"), 6, max_configs=3
            )

    def test_rejected_population_is_a_verify_error(self):
        with pytest.raises(VerifyError, match="rejects population"):
            model_check(registry.instantiate("graph-replication"), 4)

    def test_target_overrides(self):
        protocol = registry.instantiate("simple-global-line")
        by_name = model_check(protocol, 4, target="spanning-line")
        assert by_name.target == "spanning-line"
        calls = []

        def predicate(config):
            calls.append(config)
            return True

        custom = model_check(protocol, 4, target=predicate)
        assert custom.target == "custom" and calls


# ----------------------------------------------------------------------
# Registry target metadata
# ----------------------------------------------------------------------

class TestTargetMetadata:
    def test_registered_targets_resolve_and_bind(self):
        protocol = registry.instantiate("simple-global-line")
        predicate = target_predicate(protocol)
        assert predicate is not None
        assert predicate.target_name == "spanning-line"
        assert registry.get("simple-global-line").target == "spanning-line"

    def test_unknown_target_rejected_at_registration(self):
        with pytest.raises(RegistryError, match="unknown target"):
            registry.register_protocol("doomed", target="no-such-target")

    def test_self_reported_fallback_for_overridden_target_reached(self):
        predicate = target_predicate(registry.instantiate("edge-cover"))
        assert predicate is not None
        assert predicate.target_name == "self-reported"

    def test_targetless_protocol_resolves_to_none(self):
        class Plain(Protocol):
            name = "plain"
            initial_state = "a"
            states = frozenset({"a"})

            def delta(self, a, b, c):
                return None

        assert target_predicate(Plain()) is None


# ----------------------------------------------------------------------
# The verdict cache
# ----------------------------------------------------------------------

class TestVerifyCache:
    def test_round_trip_and_miss(self, tmp_path):
        cache = VerifyCache(tmp_path / "cache")
        protocol = registry.instantiate("simple-global-line")
        digest = protocol_digest(
            protocol, 4, target=None, max_configs=1000
        )
        assert cache.get(digest) is None
        cache.put(digest, {"ok": True, "n": 4})
        assert cache.get(digest) == {"ok": True, "n": 4}

    def test_failing_verdicts_are_never_cached(self, tmp_path):
        cache = VerifyCache(tmp_path)
        cache.put("deadbeef", {"ok": False, "detail": "violation"})
        assert cache.get("deadbeef") is None
        assert not cache.path("deadbeef").exists()

    def test_corrupt_entries_read_as_misses(self, tmp_path):
        cache = VerifyCache(tmp_path)
        cache.path("feedface").parent.mkdir(parents=True, exist_ok=True)
        cache.path("feedface").write_text("not json {")
        assert cache.get("feedface") is None
        cache.path("cafe").write_text(json.dumps(["not", "a", "dict"]))
        assert cache.get("cafe") is None

    def test_digest_pins_the_rule_table(self):
        base = registry.instantiate("simple-global-line")
        mutant = _mutant(("l", "l", 0))
        mutant.name = base.name  # same name, different table
        a = protocol_digest(base, 4, target=None, max_configs=1000)
        b = protocol_digest(mutant, 4, target=None, max_configs=1000)
        assert a != b
        assert a != protocol_digest(base, 5, target=None, max_configs=1000)
