"""Tests for configurations and output-graph extraction."""

from __future__ import annotations

import pytest

from repro.core.configuration import Configuration
from repro.core.errors import SimulationError


class TestConstruction:
    def test_uniform(self):
        config = Configuration.uniform(5, "q0")
        assert config.n == 5
        assert config.states() == ["q0"] * 5
        assert config.n_active_edges == 0

    def test_uniform_rejects_empty(self):
        with pytest.raises(SimulationError):
            Configuration.uniform(0, "q0")

    def test_initial_edges(self):
        config = Configuration(["a", "b", "c"], [(0, 1), (1, 2)])
        assert config.edge_state(0, 1) == 1
        assert config.edge_state(0, 2) == 0
        assert config.n_active_edges == 2


class TestStates:
    def test_set_and_read(self):
        config = Configuration.uniform(3, "a")
        config.set_state(1, "b")
        assert config.state(1) == "b"
        assert config.state_counts() == {"a": 2, "b": 1}

    def test_nodes_in_state(self):
        config = Configuration(["a", "b", "a"])
        assert config.nodes_in_state("a") == [0, 2]

    def test_nodes_where(self):
        config = Configuration([("x", 1), ("y", 2), ("x", 3)])
        assert config.nodes_where(lambda s: s[0] == "x") == [0, 2]


class TestEdges:
    def test_activation_and_deactivation(self):
        config = Configuration.uniform(4, "a")
        config.set_edge(0, 1, 1)
        assert config.edge_state(1, 0) == 1  # symmetric
        config.set_edge(1, 0, 0)
        assert config.edge_state(0, 1) == 0
        assert config.n_active_edges == 0

    def test_idempotent_updates(self):
        config = Configuration.uniform(3, "a")
        config.set_edge(0, 1, 1)
        config.set_edge(0, 1, 1)
        assert config.n_active_edges == 1
        config.set_edge(0, 2, 0)
        assert config.n_active_edges == 1

    def test_self_loop_rejected(self):
        config = Configuration.uniform(3, "a")
        with pytest.raises(SimulationError):
            config.set_edge(1, 1, 1)

    def test_invalid_edge_state_rejected(self):
        config = Configuration.uniform(3, "a")
        with pytest.raises(SimulationError):
            config.set_edge(0, 1, 2)

    def test_degree_and_neighbors(self):
        config = Configuration.uniform(4, "a")
        config.set_edge(0, 1, 1)
        config.set_edge(0, 2, 1)
        assert config.degree(0) == 2
        assert config.neighbors(0) == frozenset({1, 2})

    def test_active_edges_iteration(self):
        config = Configuration.uniform(4, "a")
        config.set_edge(2, 0, 1)
        config.set_edge(3, 1, 1)
        assert sorted(config.active_edges()) == [(0, 2), (1, 3)]


class TestOutputGraph:
    def test_all_states_output(self):
        config = Configuration(["a", "b", "c"], [(0, 1)])
        graph = config.output_graph()
        assert graph.number_of_nodes() == 3
        assert graph.has_edge(0, 1)

    def test_restricted_output_states(self):
        config = Configuration(["a", "b", "b", "a"], [(0, 1), (1, 2)])
        graph = config.output_graph(frozenset({"b"}))
        assert sorted(graph.nodes()) == [1, 2]
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(0, 1)

    def test_active_subgraph(self):
        config = Configuration(["a"] * 4, [(0, 1), (2, 3), (1, 2)])
        sub = config.active_subgraph([0, 1, 2])
        assert sorted(sub.edges()) == [(0, 1), (1, 2)]


class TestCopySemantics:
    def test_copy_is_independent(self):
        config = Configuration(["a", "b"], [(0, 1)])
        clone = config.copy()
        clone.set_state(0, "z")
        clone.set_edge(0, 1, 0)
        assert config.state(0) == "a"
        assert config.edge_state(0, 1) == 1

    def test_signature_equality(self):
        c1 = Configuration(["a", "b"], [(0, 1)])
        c2 = Configuration(["a", "b"], [(1, 0)])
        assert c1 == c2
        c2.set_state(0, "b")
        assert c1 != c2

    def test_copy_preserves_state_index(self):
        config = Configuration(["a", "b", "a"])
        clone = config.copy()
        clone.set_state(0, "b")
        assert config.state_counts() == {"a": 2, "b": 1}
        assert clone.state_counts() == {"a": 1, "b": 2}
        assert clone.nodes_in_state("b") == [0, 1]


class TestHashability:
    """Configurations are mutable and deliberately unhashable; the
    immutable ``signature()`` snapshot is the dict-key surrogate."""

    def test_configuration_is_unhashable(self):
        config = Configuration.uniform(3, "a")
        with pytest.raises(TypeError):
            hash(config)
        with pytest.raises(TypeError):
            {config}

    def test_signature_is_a_usable_key(self):
        c1 = Configuration(["a", "b"], [(0, 1)])
        c2 = Configuration(["a", "b"], [(1, 0)])
        seen = {c1.signature(): "first"}
        assert seen[c2.signature()] == "first"
        c2.set_state(0, "b")
        assert c2.signature() not in seen


class TestStateIndex:
    """The incremental nodes-by-state index behind state_counts and
    nodes_in_state."""

    def test_counts_track_mutations(self):
        config = Configuration.uniform(4, "a")
        config.set_state(0, "b")
        config.set_state(1, "b")
        config.set_state(0, "c")
        assert config.state_counts() == {"a": 2, "b": 1, "c": 1}
        assert config.count_in_state("a") == 2
        assert config.count_in_state("b") == 1
        assert config.count_in_state("missing") == 0

    def test_set_state_to_same_state_is_noop(self):
        config = Configuration.uniform(3, "a")
        config.set_state(1, "a")
        assert config.state_counts() == {"a": 3}
        assert config.nodes_in_state("a") == [0, 1, 2]

    def test_nodes_in_state_sorted_and_live(self):
        config = Configuration(["x", "y", "x", "y", "x"])
        assert config.nodes_in_state("x") == [0, 2, 4]
        config.set_state(2, "y")
        assert config.nodes_in_state("x") == [0, 4]
        assert config.nodes_in_state("y") == [1, 2, 3]
        assert config.nodes_in_state("z") == []

    def test_nodes_by_state_view(self):
        config = Configuration(["a", "b", "a"])
        bucket = config.nodes_by_state("a")
        assert sorted(bucket) == [0, 2]
        config.set_state(1, "a")
        assert sorted(bucket) == [0, 1, 2]
        assert config.nodes_by_state("b") is None

    def test_unhashable_free_structured_states(self):
        config = Configuration([("root", 0), ("free",), ("free",)])
        assert config.count_in_state(("free",)) == 2
        config.set_state(1, ("leaf",))
        assert config.state_counts() == {
            ("root", 0): 1,
            ("free",): 1,
            ("leaf",): 1,
        }
