"""Tests for Graph-Replication (Protocol 9, Theorem 13)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.errors import ProtocolError, SimulationError
from repro.core.graphs import isomorphic
from repro.protocols import GraphReplication
from tests.conftest import converge


class TestConstruction:
    def test_12_states(self):
        assert GraphReplication(nx.path_graph(3)).size == 12

    def test_disconnected_input_rejected(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(ProtocolError):
            GraphReplication(g)

    def test_empty_input_rejected(self):
        with pytest.raises(ProtocolError):
            GraphReplication(nx.Graph())

    def test_population_must_fit_replica(self):
        protocol = GraphReplication(nx.path_graph(4))
        with pytest.raises(SimulationError):
            protocol.initial_configuration(7)

    def test_initial_configuration_layout(self):
        protocol = GraphReplication(nx.cycle_graph(3))
        config = protocol.initial_configuration(8)
        assert config.states()[:3] == ["q0"] * 3
        assert config.states()[3:] == ["r0"] * 5
        assert config.n_active_edges == 3  # exactly E1


@pytest.mark.parametrize(
    "graph",
    [
        nx.path_graph(3),
        nx.cycle_graph(4),
        nx.star_graph(3),
        nx.complete_graph(4),
    ],
    ids=["path3", "cycle4", "star4", "K4"],
)
class TestReplication:
    def test_replica_is_isomorphic(self, graph):
        protocol = GraphReplication(graph)
        n1 = graph.number_of_nodes()
        result = converge(protocol, 2 * n1 + 1, seed=42, check_interval=4)
        assert result.converged
        assert protocol.target_reached(result.config)

    def test_output_graph_matches_input(self, graph):
        protocol = GraphReplication(graph)
        n1 = graph.number_of_nodes()
        result = converge(protocol, 2 * n1, seed=7, check_interval=4)
        replica = result.config.output_graph(protocol.output_states)
        replica.remove_nodes_from(list(nx.isolates(replica)))
        assert isomorphic(replica, graph)


class TestZeroWaste:
    def test_surplus_v2_nodes_remain_untouched(self):
        graph = nx.path_graph(3)
        protocol = GraphReplication(graph)
        result = converge(protocol, 9, seed=3, check_interval=4)
        # |V2| - |V1| = 3 nodes must still be in r0 with no active edges.
        untouched = result.config.nodes_in_state("r0")
        assert len(untouched) == 3
        for u in untouched:
            assert result.config.degree(u) == 0

    def test_input_graph_preserved(self):
        graph = nx.cycle_graph(4)
        protocol = GraphReplication(graph)
        result = converge(protocol, 8, seed=5, check_interval=4)
        original = result.config.active_subgraph(range(4))
        assert isomorphic(original, graph)

    def test_matching_is_injective(self):
        protocol = GraphReplication(nx.path_graph(4))
        result = converge(protocol, 8, seed=9, check_interval=4)
        mu = protocol.matching(result.config)
        assert len(mu) == 4
        assert len(set(mu.values())) == 4

    def test_single_leader_survives(self, seeds):
        protocol = GraphReplication(nx.path_graph(3))
        for seed in seeds:
            result = converge(protocol, 6, seed=seed, check_interval=4)
            assert result.config.state_counts().get("l", 0) == 1
