"""Tests for Global-Ring (Protocol 5, with the journal bugfix) and 2RC
(Protocol 6, Theorem 10)."""

from __future__ import annotations

from repro.core.configuration import Configuration
from repro.core.graphs import is_spanning_ring
from repro.core.simulator import AgitatedSimulator
from repro.protocols import GlobalRing, TwoRegularConnected
from tests.conftest import converge, converge_sequential, fair_schedulers


class TestGlobalRing:
    def test_size_matches_state_listing(self):
        # Q = {q0, q1, q2, l, w, l', l'', q2', q2'', l-bar}: 10 states.
        assert GlobalRing().size == 10

    def test_constructs_spanning_ring(self, seeds):
        protocol = GlobalRing()
        for seed in seeds:
            result = converge(protocol, 10, seed=seed)
            assert result.converged
            assert is_spanning_ring(result.config.output_graph()), seed

    def test_various_sizes(self):
        for n in (3, 4, 5, 6, 12):
            result = converge(GlobalRing(), n, seed=n)
            assert is_spanning_ring(result.config.output_graph()), n

    def test_under_fair_schedulers(self):
        n = 7
        for scheduler in fair_schedulers(n):
            result = converge_sequential(
                GlobalRing(), n, scheduler, seed=5, max_steps=5_000_000
            )
            assert result.converged, scheduler
            assert is_spanning_ring(result.config.output_graph())

    def test_premature_ring_reopens(self):
        """A closed non-spanning ring coexisting with another component
        must reopen (the blocked endpoints detect the outsider via the
        double-primed states)."""
        protocol = GlobalRing()
        # Hand-build: a blocked 3-ring (lp, q2p, q2) plus one isolated q0.
        config = Configuration(
            ["lp", "q2p", "q2", "q0"], [(0, 1), (1, 2), (2, 0)]
        )
        result = AgitatedSimulator(seed=1).run(
            protocol, 4, None, config=config
        )
        assert result.converged
        assert is_spanning_ring(result.config.output_graph())

    def test_length_one_lines_cannot_close(self):
        """The journal fix: a fresh 2-node line has the guarded lb leader
        and no (lb, q1) closing rule exists."""
        protocol = GlobalRing()
        assert not protocol.is_effective("lb", "q1", 0)
        assert protocol.is_effective("l", "q1", 0)

    def test_blocked_endpoints_ignore_plain_q2(self):
        """A spanning ring must NOT reopen: its own internal q2 nodes are
        not detection states for the blocked endpoints."""
        protocol = GlobalRing()
        assert not protocol.is_effective("lp", "q2", 0)
        assert not protocol.is_effective("q2p", "q2", 0)


class TestTwoRegularConnected:
    def test_6_states(self):
        assert TwoRegularConnected().size == 6

    def test_constructs_spanning_ring(self, seeds):
        protocol = TwoRegularConnected()
        for seed in seeds:
            result = converge(protocol, 9, seed=seed)
            assert result.converged
            assert is_spanning_ring(result.config.output_graph()), seed

    def test_various_sizes(self):
        for n in (3, 4, 5, 8, 14):
            result = converge(TwoRegularConnected(), n, seed=n * 7)
            assert is_spanning_ring(result.config.output_graph()), n

    def test_under_fair_schedulers(self):
        n = 6
        for scheduler in fair_schedulers(n):
            result = converge_sequential(
                TwoRegularConnected(), n, scheduler, seed=9, max_steps=5_000_000
            )
            assert result.converged, scheduler
            assert is_spanning_ring(result.config.output_graph())

    def test_cycle_coexisting_with_nodes_opens(self):
        """The l2 -> l3 -> l2 mechanism: a closed cycle must absorb an
        isolated node rather than stay a separate cycle."""
        # A 3-cycle with leader l2 plus two isolated q0 nodes.
        config = Configuration(
            ["l2", "q2", "q2", "q0", "q0"], [(0, 1), (1, 2), (2, 0)]
        )
        protocol = TwoRegularConnected()
        result = AgitatedSimulator(seed=2).run(protocol, 5, None, config=config)
        assert result.converged
        assert is_spanning_ring(result.config.output_graph())

    def test_stabilized_requires_unique_leader(self):
        protocol = TwoRegularConnected()
        config = Configuration(
            ["l2", "q2", "q2", "l2", "q2", "q2"],
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
        )
        assert not protocol.stabilized(config)

    def test_degree_state_invariant_at_stabilization(self, seeds):
        protocol = TwoRegularConnected()
        for seed in seeds:
            result = converge(protocol, 8, seed=seed)
            config = result.config
            for u in range(config.n):
                state = config.state(u)
                assert config.degree(u) == int(state[1:]), (u, state)
