"""The streaming observability layer: bus, frames, SSE, watch, fixes.

Pins the contracts this layer added on top of the engines:

* **Bus/trace equivalence** — on one seeded run, the event stream an
  engine publishes to a :class:`TraceBus` is *identical* to what a
  :class:`Trace` records, and attaching a bus never perturbs the run
  itself (same steps, same final configuration).
* **Census replay** — folding the event stream through a
  :class:`CensusTracker` reproduces the final configuration's census
  exactly, including across fault-frame resyncs.
* **Leap-regime sampling** — the count engine's tau-leap path streams
  sampled census frames whose counts always sum to the alive
  population, ending in a frame that matches the result.
* **Trace truncation** (bugfix) — events past ``max_events`` are
  counted, flagged, and surfaced by queries instead of dropped
  silently.
* **Client wait deadline** (bugfix) — ``ServiceClient.wait`` honors its
  timeout without overshooting by a poll interval.
* **Wedged shutdown** (bugfix) — ``ExperimentService.stop`` reports
  threads that failed to join instead of silently leaking them.
* **SSE round-trip** — a live service streams status + census + end
  frames over ``GET /jobs/<id>/events``, and the watch dashboard
  serves the same frames at ``/events`` with a ``/census`` snapshot.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.counting import CountSimulator
from repro.core.simulator import (
    ENGINES,
    Trace,
    make_engine,
    run_to_convergence,
)
from repro.core.trace import (
    BusSubscriber,
    CensusTracker,
    FrameAdapter,
    FrameLog,
    TraceBus,
    TraceTruncationWarning,
    merge_sinks,
)
from repro.protocols import SimpleGlobalLine


class _EventProbe(BusSubscriber):
    """Collects everything published on a bus."""

    def __init__(self) -> None:
        self.meta = []
        self.events = []
        self.census = []
        self.faults = []
        self.summaries = []

    def on_run_started(self, meta):
        self.meta.append(meta)

    def on_event(self, event, config):
        self.events.append(event)

    def on_census(self, frame):
        self.census.append(frame)

    def on_fault(self, frame):
        self.faults.append(frame)

    def on_run_finished(self, summary):
        self.summaries.append(summary)


class TestBusEquivalence:
    @pytest.mark.parametrize(
        "engine", [e for e in sorted(ENGINES) if e != "count"]
    )
    def test_bus_stream_equals_trace_events(self, engine):
        # One run, both sinks attached: the published interaction
        # stream must be the recorded one, event for event.
        probe = _EventProbe()
        bus = TraceBus()
        bus.subscribe(probe)
        trace = Trace()
        sim = make_engine(engine, seed=7)
        sim.run(SimpleGlobalLine(), 16, 100_000, trace=trace, bus=bus)
        assert probe.events == trace.events
        assert len(probe.meta) == 1
        assert probe.meta[0].engine == engine
        assert probe.meta[0].n == 16

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_bus_does_not_perturb_the_run(self, engine):
        plain = make_engine(engine, seed=3).run(
            SimpleGlobalLine(), 14, 100_000
        )
        bus = TraceBus()
        bus.subscribe(_EventProbe())
        observed = make_engine(engine, seed=3).run(
            SimpleGlobalLine(), 14, 100_000, bus=bus
        )
        assert observed.steps == plain.steps
        assert observed.effective_steps == plain.effective_steps
        assert (
            observed.config.state_counts() == plain.config.state_counts()
        )

    def test_run_to_convergence_publishes_run_finished(self):
        probe = _EventProbe()
        bus = TraceBus()
        bus.subscribe(probe)
        result = run_to_convergence(SimpleGlobalLine(), 12, seed=5, bus=bus)
        assert len(probe.summaries) == 1
        summary = probe.summaries[0]
        assert summary["converged"] is result.converged
        assert summary["steps"] == result.steps

    def test_merge_sinks_shapes(self):
        trace, bus = Trace(), TraceBus()
        assert merge_sinks(None, None) is None
        assert merge_sinks(trace, None) is trace
        assert merge_sinks(None, bus) is bus
        fanout = merge_sinks(trace, bus)
        assert fanout is not trace and fanout is not bus


class TestCensusReplay:
    def test_tracker_replays_final_census_exactly(self):
        frames = []
        tracker = CensusTracker(frames.append, interval=0)
        bus = TraceBus()
        bus.subscribe(tracker)
        result = make_engine("indexed", seed=11).run(
            SimpleGlobalLine(), 20, 200_000, bus=bus
        )
        final = frames[-1]
        assert final.counts == result.config.state_counts()
        assert final.n_edges == result.config.n_active_edges
        assert final.effective == result.effective_steps

    def test_tracker_resyncs_from_fault_frames(self):
        from repro.core.scenario import Scenario, make_scenario_engine

        scenario = Scenario(faults=("crash:count=2,at=50",))
        frames = []
        tracker = CensusTracker(frames.append, interval=0)
        probe = _EventProbe()
        bus = TraceBus()
        bus.subscribe(tracker)
        bus.subscribe(probe)
        sim = make_scenario_engine("indexed", 9, scenario)
        protocol = SimpleGlobalLine()
        config = scenario.build_initial(protocol, 16)
        result = sim.run(protocol, 16, 300_000, config=config, bus=bus)
        assert probe.faults, "the crash fault must publish a FaultFrame"
        assert "crash" in probe.faults[0].kinds
        assert frames[-1].counts == result.config.state_counts()
        assert frames[-1].n_edges == result.config.n_active_edges


class TestLeapCensusStreaming:
    def run_leap(self, n=256, census_interval=None, seed=0):
        probe = _EventProbe()
        bus = TraceBus()
        bus.subscribe(probe)
        sim = CountSimulator(
            seed=seed, leap_threshold=0, census_interval=census_interval
        )
        result = sim.run(SimpleGlobalLine(), n, 2_000_000, bus=bus)
        return result, probe

    def test_leap_regime_streams_sampled_census(self):
        result, probe = self.run_leap()
        assert probe.events == [], "the leap regime has no per-event path"
        assert len(probe.meta) == 1
        assert probe.meta[0].engine == "count"
        assert probe.census, "the leap regime must stream census frames"
        steps = [f.step for f in probe.census]
        assert steps == sorted(steps)
        for frame in probe.census:
            assert sum(frame.counts.values()) == 256
        final = probe.census[-1]
        assert final.step == result.steps
        assert final.counts == result.config.state_counts()
        assert final.effective == result.effective_steps

    def test_census_interval_zero_samples_every_leap(self):
        _, sparse = self.run_leap(census_interval=None)
        _, dense = self.run_leap(census_interval=0)
        assert len(dense.census) >= len(sparse.census)

    def test_exact_fallback_still_publishes_events(self):
        # Below the threshold the count engine is the indexed engine;
        # the bus must ride along on that path too.
        probe = _EventProbe()
        bus = TraceBus()
        bus.subscribe(probe)
        sim = CountSimulator(seed=4, leap_threshold=1_000_000)
        sim.run(SimpleGlobalLine(), 12, 100_000, bus=bus)
        assert probe.events, "the exact regime publishes per-event frames"
        assert probe.meta[0].engine == "count"


class TestTraceTruncation:
    def run_capped(self, cap=2):
        trace = Trace(max_events=cap)
        make_engine("indexed", seed=0).run(
            SimpleGlobalLine(), 12, 100_000, trace=trace
        )
        return trace

    def test_dropped_counter_and_flag(self):
        trace = self.run_capped()
        assert len(trace.events) == 2
        assert trace.dropped > 0
        assert trace.truncated

    def test_uncapped_trace_is_not_truncated(self):
        trace = Trace()
        make_engine("indexed", seed=0).run(
            SimpleGlobalLine(), 10, 100_000, trace=trace
        )
        assert trace.dropped == 0 and not trace.truncated

    @pytest.mark.parametrize(
        "query",
        ["edge_events", "activations", "deactivations",
         "last_edge_change_step"],
    )
    def test_queries_warn_on_truncated_trace(self, query):
        trace = self.run_capped()
        with pytest.warns(TraceTruncationWarning):
            getattr(trace, query)()


class TestFrameLog:
    def test_replay_then_live_then_close(self):
        log = FrameLog()
        log.publish({"type": "a"})
        follower = log.follow()
        assert next(follower) == {"type": "a"}
        log.publish({"type": "b"})
        assert next(follower) == {"type": "b"}
        log.close()
        assert list(follower) == []
        assert log.closed

    def test_cap_drops_data_but_not_control_frames(self):
        log = FrameLog(max_frames=2)
        log.publish({"i": 0})
        log.publish({"i": 1})
        log.publish({"i": 2})  # over the cap: dropped, counted
        log.publish({"type": "end"}, control=True)
        assert log.dropped == 1
        assert log.frames() == [{"i": 0}, {"i": 1}, {"type": "end"}]

    def test_publish_after_close_is_a_noop(self):
        log = FrameLog()
        log.close()
        log.publish({"late": True})
        assert log.frames() == []

    def test_watched_tracks_live_followers(self):
        log = FrameLog()
        assert not log.watched
        log.publish({"i": 0})
        follower = log.follow()
        next(follower)
        assert log.watched
        log.close()
        follower.close()
        assert not log.watched

    def test_heartbeat_yields_none_on_idle(self):
        log = FrameLog()
        follower = log.follow(heartbeat=0.01)
        assert next(follower) is None


class TestSseWire:
    def test_parse_sse_round_trip(self):
        from repro.service.sse import parse_sse

        raw = [
            b": keep-alive\r\n",
            b"data: {\"a\": 1}\r\n",
            b"\r\n",
            b"data: {\"b\":\r\n",
            b"data:  2}\r\n",
            b"\r\n",
        ]
        assert list(parse_sse(raw)) == [{"a": 1}, {"b": 2}]

    def test_frame_adapter_wire_shape(self):
        frames = []
        bus = TraceBus()
        bus.subscribe(
            FrameAdapter(frames.append, interval=0, extra={"trial": 3})
        )
        make_engine("indexed", seed=2).run(
            SimpleGlobalLine(), 10, 100_000, bus=bus
        )
        kinds = {f["type"] for f in frames}
        assert {"meta", "census"} <= kinds
        for frame in frames:
            assert frame["trial"] == 3  # extra merged into every frame
            json.dumps(frame)  # everything must be JSON-able
        census = [f for f in frames if f["type"] == "census"]
        assert all(
            isinstance(k, str) for f in census for k in f["counts"]
        )


class TestClientWaitDeadline:
    class _StuckClient:
        """A client whose job never finishes: wait() must time out."""

        from repro.service.client import ServiceClient as _base

        wait = _base.wait

        def status(self, job_id):
            return {
                "state": "running", "completed": 0, "total": 4,
            }

    def test_wait_does_not_overshoot_its_timeout(self):
        from repro.service.client import ServiceError

        client = self._StuckClient()
        start = time.monotonic()
        with pytest.raises(ServiceError, match="timed out"):
            client.wait("job-1", poll=30.0, timeout=0.2)
        elapsed = time.monotonic() - start
        # The old code slept the full fixed poll (30s) before noticing
        # the deadline; the fix caps the final sleep to the remainder.
        assert elapsed < 2.0

    def test_wait_checks_deadline_before_sleeping(self):
        from repro.service.client import ServiceError

        client = self._StuckClient()
        start = time.monotonic()
        with pytest.raises(ServiceError, match="timed out"):
            client.wait("job-1", poll=0.05, timeout=0.0)
        assert time.monotonic() - start < 1.0


class TestWedgedShutdown:
    class _WedgedThread:
        name = "wedged-thread"

        def join(self, timeout=None):
            pass  # pretends to join but stays alive

        def is_alive(self):
            return True

    def test_stop_reports_wedged_threads(self):
        from repro.service.api import ExperimentService

        service = ExperimentService(port=0)
        service.start()
        service._http_thread = self._WedgedThread()
        with pytest.warns(RuntimeWarning, match="wedged-thread"):
            wedged = service.stop()
        assert wedged == ["wedged-thread"]

    def test_clean_stop_reports_nothing(self):
        from repro.service.api import ExperimentService

        service = ExperimentService(port=0)
        service.start()
        assert service.stop() == []


@pytest.fixture(scope="module")
def streaming_service():
    """A storeless workers=1 service for the SSE round-trip tests."""
    from repro.service.api import ExperimentService

    service = ExperimentService(port=0, workers=1)
    service.start()
    try:
        yield service
    finally:
        service.stop()


class TestServiceEventStream:
    def client(self, service):
        from repro.service.client import ServiceClient

        return ServiceClient(service.url)

    def submit_and_collect(self, service, stream):
        from repro.analysis.runner import ExperimentSpec

        client = self.client(service)
        spec = ExperimentSpec(
            protocol="simple-global-line", sizes=(10,), trials=2,
            max_steps=200_000,
        )
        job = client.submit(spec.to_dict(), stream=stream)
        return list(client.events(job["id"])), job

    def test_stream_true_yields_census_frames(self, streaming_service):
        frames, _ = self.submit_and_collect(streaming_service, True)
        kinds = [f["type"] for f in frames]
        assert kinds[-1] == "end"
        assert frames[-1]["state"] == "done"
        assert "status" in kinds and "census" in kinds
        census = [f for f in frames if f["type"] == "census"]
        # Per-trial coordinates ride on every streamed frame.
        assert all("trial" in f and f["n"] == 10 for f in census)
        assert all(sum(f["counts"].values()) == 10 for f in census)
        runs = [f for f in frames if f["type"] == "run-end"]
        assert len(runs) == 2

    def test_stream_false_suppresses_census_frames(self, streaming_service):
        frames, _ = self.submit_and_collect(streaming_service, False)
        kinds = [f["type"] for f in frames]
        assert "census" not in kinds
        assert kinds[-1] == "end"

    def test_events_for_unknown_job_is_404(self, streaming_service):
        from repro.service.client import ServiceError

        client = self.client(streaming_service)
        with pytest.raises(ServiceError) as err:
            list(client.events("job-999"))
        assert err.value.status == 404

    def test_wants_census_policy(self):
        from repro.analysis.runner import ExperimentSpec
        from repro.service.jobs import Job, JobService

        spec = ExperimentSpec(
            protocol="simple-global-line", sizes=(8,), trials=1
        )
        serial = JobService(workers=1)
        pooled = JobService(workers=2)
        forced = Job("job-1", "sweep", spec, stream=True)
        auto = Job("job-2", "sweep", spec)
        off = Job("job-3", "sweep", spec, stream=False)
        assert serial._wants_census(forced)
        assert not serial._wants_census(off)
        assert not serial._wants_census(auto)  # nobody watching
        auto.publish_status()  # a frame to consume, so next() won't block
        follower = auto.events.follow()
        next(follower, None)
        assert serial._wants_census(auto)
        # Process pools can't carry the bus across pickling.
        assert not pooled._wants_census(forced)
        follower.close()


class TestWatchDashboard:
    def get(self, url):
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read()

    def test_watch_server_routes(self):
        from repro.viz.watch import WatchServer, census_snapshot

        log = FrameLog()
        log.publish({"type": "meta", "protocol": "p", "n": 8,
                     "engine": "indexed"}, control=True)
        log.publish({"type": "census", "step": 5, "counts": {"q1": 8},
                     "edges": 0, "effective": 0})
        log.publish({"type": "fault", "step": 9, "kinds": ["crash"],
                     "counts": {"q1": 7}, "edges": 0})
        server = WatchServer(log, port=0, title="test watch")
        host, port = server.start()
        try:
            status, page = self.get(f"http://{host}:{port}/")
            assert status == 200 and b"test watch" in page
            status, body = self.get(f"http://{host}:{port}/census")
            snap = json.loads(body)
            assert snap["ok"] and snap["census"]["counts"] == {"q1": 8}
            assert snap["meta"]["protocol"] == "p"
            assert [f["step"] for f in snap["faults"]] == [9]
            assert snap == census_snapshot(log)
            status, body = self.get(f"http://{host}:{port}/health")
            assert status == 200 and json.loads(body)["ok"]
            with pytest.raises(urllib.error.HTTPError) as err:
                self.get(f"http://{host}:{port}/nope")
            assert err.value.code == 404
        finally:
            server.stop()

    def test_events_route_streams_the_log(self):
        import threading

        from repro.viz.watch import WatchServer

        log = FrameLog()
        log.publish({"type": "census", "step": 1, "counts": {"a": 1},
                     "edges": 0, "effective": 1})
        server = WatchServer(log, port=0)
        host, port = server.start()
        frames = []

        def drain():
            from repro.service.sse import parse_sse

            with urllib.request.urlopen(
                f"http://{host}:{port}/events", timeout=10
            ) as resp:
                frames.extend(parse_sse(resp))

        reader = threading.Thread(target=drain, daemon=True)
        reader.start()
        time.sleep(0.2)
        log.publish({"type": "end", "state": "done"}, control=True)
        log.close()
        reader.join(timeout=10)
        server.stop()
        assert frames[0]["type"] == "census"
        assert frames[-1] == {"type": "end", "state": "done"}

    def test_run_local_watch_fills_the_log(self):
        from repro.viz.watch import run_local_watch

        log = FrameLog()
        worker = run_local_watch(
            "simple-global-line", n=16, seed=1, engine="indexed",
            log=log, max_steps=200_000,
        )
        worker.join(timeout=60)
        assert log.closed
        kinds = [f["type"] for f in log.frames()]
        assert "meta" in kinds and "census" in kinds
        assert kinds[-1] == "end"
        assert log.frames()[-1]["state"] == "done"

    def test_run_local_watch_reports_failure(self):
        from repro.viz.watch import run_local_watch

        log = FrameLog()
        worker = run_local_watch(
            "simple-global-line", n=16, seed=1, engine="sequential",
            log=log, max_steps=1,  # hopeless budget -> ConvergenceError
        )
        worker.join(timeout=60)
        end = log.frames()[-1]
        assert end["type"] == "end" and end["state"] == "failed"
        assert "ConvergenceError" in end["error"]

    def test_follow_job_relays_a_service_stream(self, streaming_service):
        from repro.analysis.runner import ExperimentSpec
        from repro.service.client import ServiceClient
        from repro.viz.watch import follow_job

        client = ServiceClient(streaming_service.url)
        spec = ExperimentSpec(
            protocol="simple-global-line", sizes=(8,), trials=1,
            max_steps=200_000,
        )
        job = client.submit(spec.to_dict(), stream=True)
        log = FrameLog()
        pump = follow_job(client, job["id"], log)
        pump.join(timeout=60)
        assert log.closed
        kinds = [f["type"] for f in log.frames()]
        assert "status" in kinds and "census" in kinds
        assert kinds[-1] == "end"
