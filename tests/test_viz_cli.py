"""Tests for the visualization helpers and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import PROTOCOLS, main
from repro.core.configuration import Configuration
from repro.core.trace import Trace
from repro.viz import (
    adjacency_art,
    component_summary,
    configuration_to_dot,
    render_line,
    render_star,
    state_summary,
    trace_to_dot_frames,
)


@pytest.fixture
def star_config():
    return Configuration(
        ["c", "p", "p", "p"], [(0, 1), (0, 2), (0, 3)]
    )


class TestAsciiArt:
    def test_state_summary(self, star_config):
        text = state_summary(star_config)
        assert "p:3" in text and "c:1" in text

    def test_component_summary_detects_star(self, star_config):
        assert "star" in component_summary(star_config)

    def test_component_summary_shapes(self):
        config = Configuration(
            ["a"] * 7, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 3)]
        )
        text = component_summary(config)
        assert "line" in text and "cycle" in text and "isolated" in text

    def test_render_line(self):
        config = Configuration(["q1", "q2", "l"], [(0, 1), (1, 2)])
        assert render_line(config, [0, 1, 2]) == "(q1)--(q2)--(l)"

    def test_render_star(self, star_config):
        assert "3 rays" in render_star(star_config)

    def test_adjacency_art(self, star_config):
        art = adjacency_art(star_config)
        assert "#" in art
        big = Configuration.uniform(64, "a")
        assert "suppressed" in adjacency_art(big)


class TestDot:
    def test_configuration_to_dot(self, star_config):
        dot = configuration_to_dot(star_config, highlight_states={"c"})
        assert "graph net {" in dot
        assert "0 -- 1" in dot
        assert "lightblue" in dot

    def test_trace_frames(self, star_config):
        trace = Trace(snapshot_predicate=lambda step, cfg: True)
        from repro.core.trace import Event

        trace.record(Event(1, 0, 1, "c", "c", "c", "p", 0, 1), star_config)
        frames = trace_to_dot_frames(trace)
        assert len(frames) == 1 and "graph" in frames[0]


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "global-star" in out

    def test_run_command(self, capsys):
        assert main(["run", "global-star", "-n", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "target reached: True" in out

    def test_sweep_command(self, capsys):
        assert main(
            ["sweep", "cycle-cover", "--sizes", "8,12,16", "--trials", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "fit:" in out

    def test_all_registered_protocols_run(self):
        for name, factory in PROTOCOLS.items():
            protocol = factory()
            assert protocol.size >= 2, name
