"""Tests for the visualization helpers and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.protocols import registry
from repro.core.configuration import Configuration
from repro.core.trace import Trace
from repro.viz import (
    adjacency_art,
    component_summary,
    configuration_to_dot,
    render_line,
    render_star,
    state_summary,
    trace_to_dot_frames,
)


@pytest.fixture
def star_config():
    return Configuration(
        ["c", "p", "p", "p"], [(0, 1), (0, 2), (0, 3)]
    )


class TestAsciiArt:
    def test_state_summary(self, star_config):
        text = state_summary(star_config)
        assert "p:3" in text and "c:1" in text

    def test_component_summary_detects_star(self, star_config):
        assert "star" in component_summary(star_config)

    def test_component_summary_shapes(self):
        config = Configuration(
            ["a"] * 7, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 3)]
        )
        text = component_summary(config)
        assert "line" in text and "cycle" in text and "isolated" in text

    def test_render_line(self):
        config = Configuration(["q1", "q2", "l"], [(0, 1), (1, 2)])
        assert render_line(config, [0, 1, 2]) == "(q1)--(q2)--(l)"

    def test_render_star(self, star_config):
        assert "3 rays" in render_star(star_config)

    def test_adjacency_art(self, star_config):
        art = adjacency_art(star_config)
        assert "#" in art
        big = Configuration.uniform(64, "a")
        assert "suppressed" in adjacency_art(big)


class TestDot:
    def test_configuration_to_dot(self, star_config):
        dot = configuration_to_dot(star_config, highlight_states={"c"})
        assert "graph net {" in dot
        assert "0 -- 1" in dot
        assert "lightblue" in dot

    def test_trace_frames(self, star_config):
        trace = Trace(snapshot_predicate=lambda step, cfg: True)
        from repro.core.trace import Event

        trace.record(Event(1, 0, 1, "c", "c", "c", "p", 0, 1), star_config)
        frames = trace_to_dot_frames(trace)
        assert len(frames) == 1 and "graph" in frames[0]


class TestFaultedRenderings:
    """DEAD nodes and mid-run population events through every renderer
    (previously only the clean path was exercised)."""

    @pytest.fixture
    def crashed_config(self):
        """A star whose center crashed: survivors isolated, center DEAD."""
        from repro.core.faults import DEAD

        config = Configuration(
            ["c", "p", "p", "p"], [(0, 1), (0, 2), (0, 3)]
        )
        for v in (1, 2, 3):
            config.set_edge(0, v, 0)
        config.set_state(0, DEAD)
        return config

    def test_state_summary_counts_dead_nodes(self, crashed_config):
        text = state_summary(crashed_config)
        assert "__dead__:1" in text and "p:3" in text

    def test_component_summary_renders_dead_isolates(self, crashed_config):
        text = component_summary(crashed_config)
        assert "isolated" in text and "__dead__" in text

    def test_dot_grays_out_dead_nodes(self, crashed_config):
        dot = configuration_to_dot(crashed_config, highlight_states={"p"})
        assert '0 [label="0:dead" style=filled fillcolor=gray80' in dot
        assert "lightblue" in dot  # highlights still apply to survivors
        assert "--" not in dot.replace("__dead__", "")  # no active edges

    def test_adjacency_art_after_crash(self, crashed_config):
        art = adjacency_art(crashed_config)
        assert "#" not in art  # every active edge died with the center

    def test_real_crash_run_renders_end_to_end(self):
        from repro.core.faults import DEAD
        from repro.core.scenario import Scenario
        from repro.core.simulator import run_to_convergence
        from repro.protocols import SimpleGlobalLine

        result = run_to_convergence(
            SimpleGlobalLine(), 10, seed=3, max_steps=2_000_000,
            scenario=Scenario(faults=("crash:count=2,at=100",)),
        )
        config = result.config
        assert sum(config.state(u) == DEAD for u in range(config.n)) == 2
        dot = configuration_to_dot(config)
        assert dot.count("fillcolor=gray80") == 2
        assert "__dead__:2" in state_summary(config)

    def test_population_growth_renders_mid_run_snapshots(self):
        from repro.core.scenario import Scenario
        from repro.core.simulator import run_to_convergence
        from repro.core.trace import Trace
        from repro.protocols import CycleCover

        trace = Trace(snapshot_predicate=lambda step, cfg: True)
        result = run_to_convergence(
            CycleCover(), 6, seed=1, max_steps=2_000_000,
            scenario=Scenario(faults=("arrive:count=3,at=400",)),
            trace=trace,
        )
        assert result.config.n == 9
        sizes = {config.n for _, config in trace.snapshots}
        assert 6 in sizes and 9 in sizes  # frames straddle the arrival
        frames = trace_to_dot_frames(trace)
        assert len(frames) == len(trace.snapshots)
        assert any(frame.count("label=") == 9 for frame in frames)
        # The grown population renders through the text pipeline too.
        assert len(state_summary(result.config)) > 0
        assert component_summary(result.config)


class TestCli:
    def test_list_command_renders_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "global-star" in out
        # Descriptions and parameter signatures come from the registry.
        assert "Theta(n^2 log n)" in out
        assert "c-cliques(c=3)" in out

    def test_describe_command(self, capsys):
        assert main(["describe", "k-regular-connected"]) == 0
        out = capsys.readouterr().out
        assert "k: int = 3" in out
        assert "states      : 8" in out

    def test_describe_unknown_protocol_fails_cleanly(self, capsys):
        assert main(["describe", "warp-drive"]) == 1
        err = capsys.readouterr().err
        assert "unknown protocol" in err

    def test_describe_scheduler_spec(self, capsys):
        assert main(["describe", "laggard:bias=0.8,lagged=0..2"]) == 0
        out = capsys.readouterr().out
        assert "kind        : scheduler" in out
        assert "canonical   : laggard:bias=0.8,lagged=0..2" in out
        assert "bias: float = 0.8" in out

    def test_describe_fault_spec(self, capsys):
        assert main(["describe", "recover:count=2,at=10,delay=5"]) == 0
        out = capsys.readouterr().out
        assert "kind        : fault model" in out
        assert "canonical   : recover:at=10,count=2,delay=5" in out

    def test_describe_init_spec(self, capsys):
        assert main(["describe", "doped:state=l"]) == 0
        out = capsys.readouterr().out
        assert "kind        : initial configuration" in out

    def test_describe_bare_name_with_required_params(self, capsys):
        # `list --faults` then `describe edge-drop` must work even
        # though `rate` has no default: the entry is described with the
        # parameter marked required, and no canonical line is shown.
        assert main(["describe", "edge-drop"]) == 0
        out = capsys.readouterr().out
        assert "kind        : fault model" in out
        assert "rate: probability (required)" in out
        assert "canonical" not in out

    def test_describe_unknown_param_on_known_fault(self, capsys):
        assert main(["describe", "crash:impact=9"]) == 1
        err = capsys.readouterr().err
        assert "no parameter(s) ['impact']" in err

    def test_describe_known_fault_with_bad_param_reports_fault_error(
        self, capsys
    ):
        assert main(["describe", "crash:count=abc"]) == 1
        err = capsys.readouterr().err
        assert "parameter 'count' expects int" in err

    def test_list_reports_closed_registry_coverage(self, capsys):
        # The PR-4-era "driver-run only" gap note is gone: the tm/ and
        # universal machines are first-class registry entries now.
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "not yet registered" not in out
        assert "registry coverage: complete" in out
        assert "line-tm" in out and "tm-decider" in out and "universal" in out

    def test_filtered_list_has_no_coverage_footer(self, capsys):
        assert main(["list", "--faults"]) == 0
        out = capsys.readouterr().out
        assert "arrive" in out and "churn" in out and "recover" in out
        assert "registry coverage" not in out

    def test_describe_line_tm_spec(self, capsys):
        assert main(["describe", "line-tm:program=count"]) == 0
        out = capsys.readouterr().out
        assert "class       : repro.tm.protocols.LineTM" in out
        assert "program: str = count" in out
        assert "named line program" in out

    def test_describe_universal_shorthand(self, capsys):
        assert main(["describe", "universal-connected"]) == 0
        out = capsys.readouterr().out
        assert "name        : universal" in out
        assert "family: str = connected" in out
        assert "shorthand   : universal-(?P<family>[a-z0-9-]+)" in out

    def test_describe_tm_decider_defaults(self, capsys):
        assert main(["describe", "tm-decider"]) == 0
        out = capsys.readouterr().out
        assert "machine: str = has-edge" in out
        assert "graph: graph_spec = ring-4" in out

    def test_describe_bad_line_program_reports_choices(self, capsys):
        assert main(["describe", "line-tm:program=warp"]) == 1
        err = capsys.readouterr().err
        assert "unknown line program 'warp'" in err
        assert "parity" in err

    def test_describe_bad_universal_family_reports_choices(self, capsys):
        assert main(["describe", "universal:family=warp"]) == 1
        err = capsys.readouterr().err
        assert "unknown graph language 'warp'" in err
        assert "even-edges" in err

    def test_describe_python_decider_rejected_for_tm_decider(self, capsys):
        # 'connected' exists as a decider but has no raw TM to put on a
        # line; the error must say so, not "unknown protocol".
        assert main(["describe", "tm-decider:machine=connected"]) == 1
        err = capsys.readouterr().err
        assert "unknown raw-TM decider 'connected'" in err

    def test_run_line_tm_through_the_cli(self, capsys):
        assert main(["run", "line-tm:program=parity", "-n", "16"]) == 0
        out = capsys.readouterr().out
        assert "Line-TM[parity]" in out
        assert "target reached: True" in out

    def test_conformance_command_passes_and_fails_cleanly(self, capsys):
        assert main(
            ["conformance", "global-star", "--checks", "registry,rule-table"]
        ) == 0
        out = capsys.readouterr().out
        assert "global-star" in out and "PASS" in out
        assert main(["conformance", "--checks", "no-such-check"]) == 1
        err = capsys.readouterr().err
        assert "unknown check" in err

    def test_conformance_list_checks(self, capsys):
        assert main(["conformance", "--list-checks"]) == 0
        out = capsys.readouterr().out
        for name in ("registry", "rule-table", "engines", "faults"):
            assert name in out

    def test_run_command(self, capsys):
        assert main(["run", "global-star", "-n", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "target reached: True" in out

    def test_run_accepts_shorthand_spec(self, capsys):
        assert main(["run", "3-cliques", "-n", "9", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "3-Cliques" in out

    def test_sweep_command(self, capsys):
        assert main(
            ["sweep", "cycle-cover", "--sizes", "8,12,16", "--trials", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "fit:" in out

    def test_sweep_jobs_and_out(self, capsys, tmp_path):
        out_path = tmp_path / "sweep.json"
        assert main(
            [
                "sweep", "cycle-cover", "--sizes", "8,12", "--trials", "2",
                "--jobs", "2", "--out", str(out_path),
            ]
        ) == 0
        from repro.core.serialization import load_sweep_result

        result = load_sweep_result(str(out_path))
        assert result.spec.protocol == "cycle-cover"
        assert len(result.records) == 4

    def test_all_registered_protocols_instantiate(self):
        for entry in registry.available():
            protocol = entry.instantiate()
            assert protocol.name, entry.name
