"""Tests for the visualization helpers and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.protocols import registry
from repro.core.configuration import Configuration
from repro.core.trace import Trace
from repro.viz import (
    adjacency_art,
    component_summary,
    configuration_to_dot,
    render_line,
    render_star,
    state_summary,
    trace_to_dot_frames,
)


@pytest.fixture
def star_config():
    return Configuration(
        ["c", "p", "p", "p"], [(0, 1), (0, 2), (0, 3)]
    )


class TestAsciiArt:
    def test_state_summary(self, star_config):
        text = state_summary(star_config)
        assert "p:3" in text and "c:1" in text

    def test_component_summary_detects_star(self, star_config):
        assert "star" in component_summary(star_config)

    def test_component_summary_shapes(self):
        config = Configuration(
            ["a"] * 7, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 3)]
        )
        text = component_summary(config)
        assert "line" in text and "cycle" in text and "isolated" in text

    def test_render_line(self):
        config = Configuration(["q1", "q2", "l"], [(0, 1), (1, 2)])
        assert render_line(config, [0, 1, 2]) == "(q1)--(q2)--(l)"

    def test_render_star(self, star_config):
        assert "3 rays" in render_star(star_config)

    def test_adjacency_art(self, star_config):
        art = adjacency_art(star_config)
        assert "#" in art
        big = Configuration.uniform(64, "a")
        assert "suppressed" in adjacency_art(big)


class TestDot:
    def test_configuration_to_dot(self, star_config):
        dot = configuration_to_dot(star_config, highlight_states={"c"})
        assert "graph net {" in dot
        assert "0 -- 1" in dot
        assert "lightblue" in dot

    def test_trace_frames(self, star_config):
        trace = Trace(snapshot_predicate=lambda step, cfg: True)
        from repro.core.trace import Event

        trace.record(Event(1, 0, 1, "c", "c", "c", "p", 0, 1), star_config)
        frames = trace_to_dot_frames(trace)
        assert len(frames) == 1 and "graph" in frames[0]


class TestCli:
    def test_list_command_renders_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "global-star" in out
        # Descriptions and parameter signatures come from the registry.
        assert "Theta(n^2 log n)" in out
        assert "c-cliques(c=3)" in out

    def test_describe_command(self, capsys):
        assert main(["describe", "k-regular-connected"]) == 0
        out = capsys.readouterr().out
        assert "k: int = 3" in out
        assert "states      : 8" in out

    def test_describe_unknown_protocol_fails_cleanly(self, capsys):
        assert main(["describe", "warp-drive"]) == 1
        err = capsys.readouterr().err
        assert "unknown protocol" in err

    def test_describe_scheduler_spec(self, capsys):
        assert main(["describe", "laggard:bias=0.8,lagged=0..2"]) == 0
        out = capsys.readouterr().out
        assert "kind        : scheduler" in out
        assert "canonical   : laggard:bias=0.8,lagged=0..2" in out
        assert "bias: float = 0.8" in out

    def test_describe_fault_spec(self, capsys):
        assert main(["describe", "recover:count=2,at=10,delay=5"]) == 0
        out = capsys.readouterr().out
        assert "kind        : fault model" in out
        assert "canonical   : recover:at=10,count=2,delay=5" in out

    def test_describe_init_spec(self, capsys):
        assert main(["describe", "doped:state=l"]) == 0
        out = capsys.readouterr().out
        assert "kind        : initial configuration" in out

    def test_describe_bare_name_with_required_params(self, capsys):
        # `list --faults` then `describe edge-drop` must work even
        # though `rate` has no default: the entry is described with the
        # parameter marked required, and no canonical line is shown.
        assert main(["describe", "edge-drop"]) == 0
        out = capsys.readouterr().out
        assert "kind        : fault model" in out
        assert "rate: probability (required)" in out
        assert "canonical" not in out

    def test_describe_unknown_param_on_known_fault(self, capsys):
        assert main(["describe", "crash:impact=9"]) == 1
        err = capsys.readouterr().err
        assert "no parameter(s) ['impact']" in err

    def test_describe_known_fault_with_bad_param_reports_fault_error(
        self, capsys
    ):
        assert main(["describe", "crash:count=abc"]) == 1
        err = capsys.readouterr().err
        assert "parameter 'count' expects int" in err

    def test_list_notes_unregistered_machines(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "not yet registered" in out
        assert "tm/" in out and "universal" in out

    def test_filtered_list_has_no_coverage_footer(self, capsys):
        assert main(["list", "--faults"]) == 0
        out = capsys.readouterr().out
        assert "arrive" in out and "churn" in out and "recover" in out
        assert "not yet registered" not in out

    def test_run_command(self, capsys):
        assert main(["run", "global-star", "-n", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "target reached: True" in out

    def test_run_accepts_shorthand_spec(self, capsys):
        assert main(["run", "3-cliques", "-n", "9", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "3-Cliques" in out

    def test_sweep_command(self, capsys):
        assert main(
            ["sweep", "cycle-cover", "--sizes", "8,12,16", "--trials", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "fit:" in out

    def test_sweep_jobs_and_out(self, capsys, tmp_path):
        out_path = tmp_path / "sweep.json"
        assert main(
            [
                "sweep", "cycle-cover", "--sizes", "8,12", "--trials", "2",
                "--jobs", "2", "--out", str(out_path),
            ]
        ) == 0
        from repro.core.serialization import load_sweep_result

        result = load_sweep_result(str(out_path))
        assert result.spec.protocol == "cycle-cover"
        assert len(result.records) == 4

    def test_all_registered_protocols_instantiate(self):
        for entry in registry.available():
            protocol = entry.instantiate()
            assert protocol.name, entry.name
