"""The experiment service: keys, store, cache plumbing, jobs, HTTP API.

Pins the three contracts of the service layer:

* **Key stability** — a trial's content address is a pure function of
  its canonical spec payload and the protocol's behavior digest: stable
  across processes and dict orderings, changed by exactly the things
  that change the record (rule table, schema version, scenario).
* **Cache transparency** — a warm sweep performs *zero* engine
  executions (asserted via the in-process execution counter on the
  serial executor) and returns a byte-identical result.
* **Service round-trip** — submit → status → results through the
  running HTTP service, under both serial and multi-worker execution,
  with the second submission served 100% from the store.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing

import pytest

from repro.analysis import robustness as robustness_mod
from repro.analysis import runner as runner_mod
from repro.analysis.robustness import (
    RobustnessSpec,
    RobustnessTrial,
    run_robustness,
)
from repro.analysis.runner import ExperimentSpec, Runner, TrialSpec
from repro.core.protocol import TableProtocol
from repro.core.scenario import Scenario
from repro.service import keys as keys_mod
from repro.service.jobs import JobService, kind_of
from repro.service.keys import (
    behavior_digest,
    clear_digest_cache,
    code_digest,
    robustness_trial_key,
    trial_key,
)
from repro.service.store import ResultStore, StoreError

SPEC = ExperimentSpec(protocol="cycle-cover", sizes=(8, 12), trials=3)

TRIAL = TrialSpec(protocol="cycle-cover", n=10, trial=2, seed=77)


def _key_in_subprocess(_=None) -> str:
    """Module-level so a spawn-context worker can pickle and run it."""
    return trial_key(TRIAL)


class TestKeys:
    def test_key_is_stable_within_a_process(self):
        assert trial_key(TRIAL) == trial_key(TRIAL)

    def test_key_is_stable_across_processes(self):
        # A spawn child re-imports everything under its own hash
        # randomization; the key must come out identical.
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            child_key = pool.apply(_key_in_subprocess)
        assert child_key == trial_key(TRIAL)

    def test_key_ignores_payload_dict_ordering(self):
        from repro.core.serialization import trial_spec_to_dict
        from repro.service.keys import canonical_payload

        payload = trial_spec_to_dict(TRIAL)
        shuffled = dict(reversed(list(payload.items())))
        assert canonical_payload(payload) == canonical_payload(shuffled)

    def test_key_changes_with_every_spec_field(self):
        from dataclasses import replace

        base = trial_key(TRIAL)
        variants = [
            replace(TRIAL, n=11),
            replace(TRIAL, trial=3),
            replace(TRIAL, seed=78),
            replace(TRIAL, engine="agitated"),
            replace(TRIAL, measure="quiescence"),
            replace(TRIAL, max_steps=10_000),
            replace(TRIAL, scenario=Scenario(scheduler="round-robin")),
        ]
        keys = [trial_key(v) for v in variants]
        assert base not in keys
        assert len(set(keys)) == len(keys)

    def test_key_changes_with_the_rule_table(self):
        table = {("a", "a", 0): ("b", "b", 1)}
        one = TableProtocol("probe", "a", dict(table))
        table[("b", "b", 1)] = ("a", "a", 0)
        two = TableProtocol("probe", "a", dict(table))
        assert behavior_digest(one) != behavior_digest(two)

    def test_key_changes_with_the_schema_version(self, monkeypatch):
        before = trial_key(TRIAL)
        monkeypatch.setattr(keys_mod, "SCHEMA_VERSION", 999)
        clear_digest_cache()
        try:
            assert trial_key(TRIAL) != before
        finally:
            clear_digest_cache()

    def test_sweep_and_robustness_key_spaces_never_collide(self):
        # Same protocol/n/trial/seed on both sides; the payload kind
        # tag must still separate them.
        r = RobustnessTrial(
            protocol="cycle-cover", n=10, load=0.0, trial=2, seed=77
        )
        assert robustness_trial_key(r) != trial_key(TRIAL)

    def test_code_digest_is_memoized_per_canonical_spec(self):
        clear_digest_cache()
        first = code_digest("cycle-cover")
        assert code_digest("cycle-cover") is first


class TestStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        record = runner_mod.run_trial(TRIAL)
        key = trial_key(TRIAL)
        assert store.get(key) is None  # miss first
        store.put(key, record, "trial")
        assert store.get(key) == record
        stats = store.stats()
        assert (stats.entries, stats.hits, stats.misses, stats.puts) == (
            1, 1, 1, 1,
        )
        assert stats.hit_rate == 0.5

    def test_malformed_key_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(StoreError, match="malformed"):
            store.path("../../etc/passwd")

    def test_crashed_writer_leaves_only_a_tmp_that_gc_collects(
        self, tmp_path
    ):
        store = ResultStore(tmp_path)
        record = runner_mod.run_trial(TRIAL)
        key = trial_key(TRIAL)
        store.put(key, record, "trial")
        # Simulate a writer that died between write_text and os.replace.
        shard = store.path(key).parent
        (shard / f"{key}.json.tmp").write_text('{"half": "written')
        assert store.get(key) == record  # the real entry is untouched
        gc = store.gc()
        assert gc.removed_tmp == 1 and gc.kept == 1
        assert not list(shard.glob("*.tmp"))

    def test_gc_removes_corrupt_and_mis_keyed_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        record = runner_mod.run_trial(TRIAL)
        key = trial_key(TRIAL)
        store.put(key, record, "trial")
        # Corrupt JSON under a plausible key.
        bad_key = "ab" + "0" * 62
        bad = store.path(bad_key)
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("not json")
        # Valid envelope, filename that does not match the stored key.
        wrong = store.path("cd" + "1" * 62)
        wrong.parent.mkdir(parents=True, exist_ok=True)
        wrong.write_text(store.path(key).read_text())
        assert store.get(bad_key) is None  # corrupt reads are misses
        gc = store.gc()
        assert gc.removed_invalid == 2 and gc.kept == 1
        assert store.get(key) == record
        # Emptied shards are pruned.
        assert not wrong.parent.exists()

    def test_version_skewed_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        record = runner_mod.run_trial(TRIAL)
        key = trial_key(TRIAL)
        store.put(key, record, "trial")
        payload = json.loads(store.path(key).read_text())
        payload["version"] = 999
        store.path(key).write_text(json.dumps(payload))
        assert store.get(key) is None


class TestCachedExecution:
    def test_warm_sweep_runs_zero_engine_steps_and_is_byte_identical(
        self, tmp_path
    ):
        store = ResultStore(tmp_path)
        cold = Runner(jobs=1, cache=store).run(SPEC)
        counter = runner_mod.EXECUTION_COUNTER.count
        warm = Runner(jobs=1, cache=store).run(SPEC)
        assert runner_mod.EXECUTION_COUNTER.count == counter, (
            "warm sweep executed trials despite a fully warm store"
        )
        assert warm.to_json() == cold.to_json()

    def test_partially_warm_store_executes_only_the_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        small = ExperimentSpec(protocol="cycle-cover", sizes=(8,), trials=3)
        Runner(jobs=1, cache=store).run(small)
        grown = ExperimentSpec(protocol="cycle-cover", sizes=(8,), trials=5)
        counter = runner_mod.EXECUTION_COUNTER.count
        result = Runner(jobs=1, cache=store).run(grown)
        assert runner_mod.EXECUTION_COUNTER.count == counter + 2
        assert len(result.records) == 5

    def test_cache_composes_with_the_process_executor(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = Runner(jobs=1, cache=store).run(SPEC)
        warm = Runner(jobs=2, cache=store).run(SPEC)
        assert warm.to_json() == cold.to_json()
        assert store.stats().hits >= len(SPEC.expand())

    def test_run_robustness_cache_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = RobustnessSpec(
            protocols=("cycle-cover",), loads=(0.0, 1.0), n=8, trials=2,
            max_steps=200_000,
        )
        cold = run_robustness(spec, cache=store)
        counter = robustness_mod.EXECUTION_COUNTER.count
        warm = run_robustness(spec, cache=store)
        assert robustness_mod.EXECUTION_COUNTER.count == counter
        assert warm.to_json() == cold.to_json()

    def test_run_trials_uses_the_cache_for_registry_specs(self, tmp_path):
        from repro.analysis.experiments import run_trials

        store = ResultStore(tmp_path)
        cold = run_trials("cycle-cover", 8, 3, cache=store)
        counter = runner_mod.EXECUTION_COUNTER.count
        warm = run_trials("cycle-cover", 8, 3, cache=store)
        assert runner_mod.EXECUTION_COUNTER.count == counter
        assert warm == cold

    def test_run_trials_skips_the_cache_for_anonymous_factories(
        self, tmp_path
    ):
        from repro.analysis.experiments import run_trials

        store = ResultStore(tmp_path)
        factory = lambda: TableProtocol(  # noqa: E731
            "anon", "a", {("a", "a", 0): ("b", "b", 1)}
        )
        run_trials(factory, 6, 2, cache=store, max_steps=100_000)
        assert store.stats().puts == 0  # no stable address, no cache


class TestJobService:
    def run(self, coro):
        return asyncio.run(coro)

    def test_kind_of_rejects_foreign_specs(self):
        from repro.service.jobs import JobError

        assert kind_of(SPEC) == "sweep"
        with pytest.raises(JobError, match="ExperimentSpec"):
            kind_of(object())

    def test_submit_wait_result_matches_direct_execution(self, tmp_path):
        async def scenario():
            service = JobService(store=ResultStore(tmp_path))
            job = await service.submit(SPEC)
            await service.wait(job.id)
            return job

        job = self.run(scenario())
        assert job.state == "done" and not job.partial
        direct = Runner(jobs=1).run(SPEC)
        assert [r.deterministic() for r in job.result().records] == [
            r.deterministic() for r in direct.records
        ]

    def test_resubmission_is_fully_cached_and_byte_identical(self, tmp_path):
        async def scenario():
            service = JobService(store=ResultStore(tmp_path))
            first = await service.submit(SPEC)
            await service.wait(first.id)
            second = await service.submit(SPEC)
            await service.wait(second.id)
            return first, second

        first, second = self.run(scenario())
        assert first.cached == 0
        assert second.cached == second.total == len(SPEC.expand())
        assert second.result().to_json() == first.result().to_json()

    def test_cancel_before_execution_cancels_cleanly(self, tmp_path):
        async def scenario():
            service = JobService(store=ResultStore(tmp_path))
            job = await service.submit(SPEC)
            await service.cancel(job.id)
            await service.wait(job.id)
            return job

        job = self.run(scenario())
        assert job.state == "cancelled"
        assert job.finished_at is not None

    def test_status_dict_round_trips_the_spec(self, tmp_path):
        async def scenario():
            service = JobService(store=ResultStore(tmp_path))
            job = await service.submit(SPEC)
            await service.wait(job.id)
            return job.status_dict()

        status = self.run(scenario())
        from repro.core.serialization import experiment_spec_from_dict

        assert experiment_spec_from_dict(status["spec"]) == SPEC
        assert status["state"] == "done"
        assert status["completed"] == status["total"]

    def test_failed_job_reports_the_error_instead_of_raising(self):
        bad = ExperimentSpec(
            protocol="simple-global-line", sizes=(8,), trials=1,
            engine="sequential", max_steps=10,
        )

        async def scenario():
            service = JobService()
            job = await service.submit(bad)
            await service.wait(job.id)
            return job

        job = self.run(scenario())
        assert job.state == "failed"
        assert job.error


@pytest.fixture(scope="module")
def live_service():
    """One HTTP service (ephemeral port, workers=1, fresh store) shared
    by the endpoint tests."""
    import tempfile

    from repro.service.api import ExperimentService

    with tempfile.TemporaryDirectory() as tmp:
        service = ExperimentService(store=ResultStore(tmp), port=0)
        service.start()
        try:
            yield service
        finally:
            service.stop()


class TestHttpService:
    def client(self, service):
        from repro.service.client import ServiceClient

        return ServiceClient(service.url)

    def test_health(self, live_service):
        payload = self.client(live_service).health()
        assert payload["ok"] is True
        assert payload["workers"] == 1
        assert payload["store"]["root"]

    def test_submit_status_results_round_trip_and_warm_resubmit(
        self, live_service
    ):
        client = self.client(live_service)
        job = client.submit(SPEC.to_dict())
        status = client.wait(job["id"], poll=0.05, timeout=120)
        assert status["state"] == "done"
        first = client.result(job["id"])
        assert first["partial"] is False
        job2 = client.submit(SPEC.to_dict())
        status2 = client.wait(job2["id"], poll=0.05, timeout=120)
        assert status2["cached"] == status2["total"]
        second = client.result(job2["id"])
        assert json.dumps(first["result"], sort_keys=True) == json.dumps(
            second["result"], sort_keys=True
        )
        from repro.analysis.runner import SweepResult

        rebuilt = SweepResult.from_dict(second["result"])
        assert rebuilt.spec == SPEC

    def test_multi_worker_service_agrees_with_serial(self, tmp_path):
        from repro.service.api import ExperimentService

        serial = json.dumps(
            Runner(jobs=1).run(SPEC).to_dict()["records"], sort_keys=True
        )
        service = ExperimentService(
            store=ResultStore(tmp_path), workers=2, port=0
        )
        service.start()
        try:
            client = self.client(service)
            job = client.submit(SPEC.to_dict())
            client.wait(job["id"], poll=0.05, timeout=180)
            parallel = client.result(job["id"])["result"]["records"]
        finally:
            service.stop()
        # Workers re-time each trial, so compare deterministically.
        stripped = [
            {**r, "elapsed_seconds": 0.0} for r in json.loads(serial)
        ]
        parallel = [{**r, "elapsed_seconds": 0.0} for r in parallel]
        assert parallel == stripped

    def test_unknown_job_is_a_clean_404(self, live_service):
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError, match="unknown job"):
            self.client(live_service).status("job-999")

    def test_bad_spec_is_a_clean_400(self, live_service):
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError):
            self.client(live_service).submit({"nonsense": True})

    def test_store_stats_and_gc_endpoints(self, live_service):
        client = self.client(live_service)
        stats = client.store_stats()
        assert set(stats) >= {"root", "entries", "hits", "misses"}
        gc = client.store_gc()
        assert gc["removed_tmp"] == 0


class TestPoolMap:
    def test_serial_path_runs_the_initializer_in_process(self):
        calls = []
        out = runner_mod.pool_map(
            abs, [-1, 2, -3], 1,
            initializer=lambda: calls.append(True),
        )
        assert out == [1, 2, 3]
        assert calls == [True]

    def test_serial_and_process_paths_agree(self):
        trials = SPEC.expand()[:3]
        serial = runner_mod.pool_map(runner_mod.run_trial, trials, 1)
        parallel = runner_mod.pool_map(runner_mod.run_trial, trials, 2)
        assert [r.deterministic() for r in serial] == [
            r.deterministic() for r in parallel
        ]

    def test_executors_route_through_pool_map(self):
        # The dedupe satellite: both named executors are thin wrappers
        # over the one pool entry point.
        import inspect

        for executor in ("serial", "process"):
            source = inspect.getsource(runner_mod.EXECUTORS[executor])
            assert "pool_map" in source
