"""Tests for dynamic populations and crash notifications: the
``arrive``/``recover``/``churn`` fault models, their per-engine
behavior (population growth, horizon gating, stream re-binding), the
``on_neighbor_crash`` notification hook, and the fault-tolerant global
line built on it."""

from __future__ import annotations

import random

import pytest

from repro.core.configuration import Configuration
from repro.core.errors import SimulationError
from repro.core.faults import (
    DEAD,
    FAULTS,
    compact_survivors,
    compile_fault_plan,
    dead_nodes,
    survivors,
)
from repro.core.graphs import is_spanning_line
from repro.core.scenario import Scenario
from repro.core.simulator import run_to_convergence
from repro.protocols import FTGlobalLine, GlobalStar, SimpleGlobalLine

ENGINES = ("indexed", "agitated", "sequential")


def _run(protocol, n, seed, engine, scenario, max_steps=5_000_000):
    return run_to_convergence(
        protocol, n, seed=seed, engine=engine, scenario=scenario,
        max_steps=max_steps,
    )


class TestAddNode:
    def test_add_node_grows_population(self):
        config = Configuration.uniform(3, "q0")
        u = config.add_node("x")
        assert u == 3
        assert config.n == 4
        assert config.state(3) == "x"
        assert config.degree(3) == 0
        assert config.count_in_state("x") == 1

    def test_add_node_preserves_existing_structure(self):
        config = Configuration(["a", "b"], [(0, 1)])
        config.add_node("a")
        assert config.edge_state(0, 1) == 1
        assert config.count_in_state("a") == 2
        assert sorted(config.active_edges()) == [(0, 1)]


class TestPopulationFaultModels:
    def test_registry_names(self):
        assert {"arrive", "recover", "churn"} <= set(FAULTS.names())
        assert FAULTS.canonical("arrival:count=2") == "arrive:at=0,count=2"
        assert FAULTS.canonical("rejoin:count=1") == (
            "recover:at=0,count=1,delay=0"
        )
        assert FAULTS.canonical("turnover:rate=0.5") == "churn:rate=0.5"

    def test_arrival_plan_is_one_shot(self):
        plan = FAULTS.instantiate("arrive:count=3,at=50").compile(
            8, random.Random(0)
        )
        assert plan.horizon == 50
        assert plan.mutates_population
        assert plan.next_step(-1) == 50
        assert plan.next_step(50) is None
        actions = plan.actions_at(
            50, Configuration.uniform(8, "q0"), list(range(8))
        )
        assert len(actions) == 1
        assert (actions[0].kind, actions[0].count) == ("arrive", 3)

    def test_recover_plan_fires_after_delay(self):
        plan = FAULTS.instantiate("recover:count=2,at=100,delay=400").compile(
            8, random.Random(1)
        )
        assert plan.horizon == 500
        assert plan.next_step(-1) == 500
        config = Configuration(["q0", DEAD, DEAD, DEAD])
        actions = plan.actions_at(500, config, [0])
        assert len(actions) == 1
        assert actions[0].kind == "revive"
        assert set(actions[0].nodes) <= set(dead_nodes(config))
        assert len(actions[0].nodes) == 2

    def test_recover_with_nothing_dead_is_a_noop(self):
        plan = FAULTS.instantiate("recover:count=2,at=10").compile(
            4, random.Random(0)
        )
        config = Configuration.uniform(4, "q0")
        assert plan.actions_at(10, config, list(range(4))) == []

    def test_churn_plan_pairs_crash_and_arrival(self):
        model = FAULTS.instantiate("churn:rate=0.01")
        assert not model.bounded
        plan = model.compile(8, random.Random(2))
        assert plan.mutates_population
        first = plan.next_step(-1)
        assert first >= 1
        actions = plan.actions_at(
            first, Configuration.uniform(8, "q0"), list(range(8))
        )
        assert [a.kind for a in actions] == ["crash", "arrive"]
        assert len(actions[0].nodes) == 1 and actions[1].count == 1

    def test_composite_plan_propagates_population_flag(self):
        models = (
            FAULTS.instantiate("crash:count=1,at=10"),
            FAULTS.instantiate("arrive:count=1,at=20"),
        )
        plan = compile_fault_plan(models, 8, seed=0)
        assert plan.mutates_population
        assert plan.horizon == 20
        crash_only = compile_fault_plan(
            (FAULTS.instantiate("crash:count=1,at=10"),), 8, seed=0
        )
        assert not crash_only.mutates_population

    def test_validation(self):
        with pytest.raises(Exception):
            FAULTS.instantiate("arrive:count=0")
        with pytest.raises(Exception):
            FAULTS.instantiate("churn:rate=1.5")
        with pytest.raises(Exception):
            FAULTS.instantiate("recover:count=1,delay=-5")

    def test_unbounded_churn_detected_by_scenario(self):
        assert Scenario(faults=("churn:rate=0.01",)).has_unbounded_faults
        assert not Scenario(faults=("arrive:count=2,at=5",)).has_unbounded_faults


class TestArrivalsThroughEngines:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_arrivals_join_and_get_built_in(self, engine):
        protocol = SimpleGlobalLine()
        result = _run(
            protocol, 6, 3, engine,
            Scenario(faults=("arrive:count=3,at=200",)),
        )
        assert result.converged
        assert result.config.n == 9
        assert len(survivors(result.config)) == 9
        assert protocol.target_reached(result.config)
        # The arrival horizon gates stabilization: the run cannot have
        # declared itself stable before the nodes joined.
        assert result.steps >= 200

    @pytest.mark.parametrize("engine", ENGINES)
    def test_arrival_past_stabilization_reopens_the_run(self, engine):
        # Global-Star stabilizes quickly at n=6; an arrival at 50_000
        # lands long after, so the horizon gate must keep the run alive
        # and the new node must be wired into the star.
        protocol = GlobalStar()
        result = _run(
            protocol, 6, 1, engine,
            Scenario(faults=("arrive:count=1,at=50000",)),
        )
        assert result.converged
        assert result.steps >= 50_000
        assert result.config.n == 7
        assert protocol.target_reached(result.config)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_arrival_at_zero_grows_before_first_pick(self, engine):
        protocol = SimpleGlobalLine()
        result = _run(
            protocol, 4, 5, engine, Scenario(faults=("arrive:count=2,at=0",)),
        )
        assert result.converged
        assert result.config.n == 6
        assert protocol.target_reached(result.config)

    def test_sequential_rebinds_round_robin_stream(self):
        # Population growth re-derives the scheduler's pair stream; the
        # deterministic round-robin scheduler must start covering the
        # new node afterwards.
        protocol = SimpleGlobalLine()
        result = _run(
            protocol, 6, 2, "sequential",
            Scenario(
                scheduler="round-robin", faults=("arrive:count=2,at=100",),
            ),
        )
        assert result.converged
        assert result.config.n == 8
        assert protocol.target_reached(result.config)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_near_extinction_then_arrival_recovers(self, engine):
        # Crash to a single survivor: no alive pair can advance the
        # clock, so engines must jump straight to the pending arrival
        # instead of declaring quiescence (or spinning forever).
        protocol = SimpleGlobalLine()
        result = _run(
            protocol, 6, 7, engine,
            Scenario(
                faults=("crash:count=5,at=0", "arrive:count=4,at=1000",),
            ),
        )
        assert result.converged
        assert result.config.n == 10
        alive = survivors(result.config)
        assert len(alive) == 5
        assert is_spanning_line(result.config.active_subgraph(alive))


class TestRecoveryThroughEngines:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_crashed_nodes_rejoin_fresh(self, engine):
        # Mid-construction crashes wreck line fragments; the
        # fault-tolerant protocol dissolves the damage, and the
        # recovered nodes rejoin as fresh q0 material — the final line
        # must span the whole (fully recovered) population.
        protocol = FTGlobalLine()
        result = _run(
            protocol, 10, 11, engine,
            Scenario(
                faults=(
                    "crash:count=3,at=100",
                    "recover:count=3,at=100,delay=2000",
                ),
            ),
        )
        assert result.converged
        assert result.steps >= 2100
        assert len(survivors(result.config)) == 10
        assert not dead_nodes(result.config)
        assert protocol.target_reached(result.config)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_partial_recovery(self, engine):
        protocol = SimpleGlobalLine()
        result = _run(
            protocol, 8, 4, engine,
            Scenario(
                faults=(
                    "crash:count=3,at=0",
                    "recover:count=1,at=0,delay=500",
                ),
            ),
        )
        assert result.converged
        assert len(survivors(result.config)) == 6
        assert len(dead_nodes(result.config)) == 2


class TestChurnThroughEngines:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_churn_keeps_alive_count_invariant(self, engine):
        # Paired departures/arrivals: the alive population stays at the
        # starting size while total slots grow by one per churn event.
        # The rate is high enough that churn fires long before the line
        # could complete, so at least one event lands in every run.
        protocol = FTGlobalLine()
        result = _run(
            protocol, 10, 9, engine,
            Scenario(faults=("churn:rate=0.1",)), max_steps=1_000,
        )
        alive = survivors(result.config)
        assert len(alive) == 10
        churned = result.config.n - 10
        assert churned == len(dead_nodes(result.config))
        assert churned > 0, "budget long enough that churn fired"

    def test_churn_requires_budget_in_spec(self):
        from repro.analysis.runner import ExperimentError, ExperimentSpec

        with pytest.raises(ExperimentError, match="max_steps"):
            ExperimentSpec(
                protocol="ft-global-line", sizes=(8,), trials=1,
                scenario=Scenario(faults=("churn:rate=0.01",)),
            )


class TestCrashNotifications:
    def test_default_protocols_ignore_notifications(self):
        assert SimpleGlobalLine().on_neighbor_crash("q2") is None

    def test_ft_line_notification_map(self):
        protocol = FTGlobalLine()
        assert protocol.on_neighbor_crash("q1") == "q0"
        assert protocol.on_neighbor_crash("l") == "q0"
        assert protocol.on_neighbor_crash("q2") == "r"
        assert protocol.on_neighbor_crash("w") == "r"
        assert protocol.on_neighbor_crash("r") == "q0"
        # Free nodes have nothing to repair: the q0 -> q0 no-op entry
        # exists so the verifier's missing-hook lint sees every
        # edge-capable state covered (returning None means "unhandled").
        assert protocol.on_neighbor_crash("q0") == "q0"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_notified_neighbors_change_state(self, engine):
        # Crash mid-construction: notifications must turn exposed
        # fragment ends into reset carriers, and every carrier must be
        # consumed (no stranded fragments, no leftover r/q0 material).
        protocol = FTGlobalLine()
        result = _run(
            protocol, 6, 13, engine,
            Scenario(faults=("crash:count=2,at=400",)),
        )
        assert result.converged
        alive = survivors(result.config)
        assert len(alive) == 4
        assert is_spanning_line(result.config.active_subgraph(alive))
        counts = result.config.state_counts()
        assert counts.get("r", 0) == 0 and counts.get("q0", 0) == 0


class TestFTGlobalLine:
    def test_registry_spec(self):
        from repro.protocols import registry

        protocol = registry.instantiate("ft-global-line")
        assert isinstance(protocol, FTGlobalLine)
        assert registry.canonical_spec("fault-tolerant-global-line") == (
            "ft-global-line"
        )

    def test_faultless_run_matches_simple_line_target(self):
        # Without crashes the reset state is unreachable: the protocol
        # is Simple-Global-Line plus dead rules.
        protocol = FTGlobalLine()
        result = run_to_convergence(protocol, 12, seed=0)
        assert result.converged
        assert protocol.target_reached(result.config)
        assert result.config.count_in_state("r") == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_survives_mid_run_crashes_on_every_engine(self, engine):
        protocol = FTGlobalLine()
        for seed in range(3):
            result = _run(
                protocol, 12, seed, engine,
                Scenario(faults=("crash:count=3,at=300",)),
            )
            assert result.converged
            assert protocol.target_reached(
                compact_survivors(result.config)
            ), f"seed {seed} did not restabilize to a line"

    def test_survives_repeated_crash_waves(self):
        protocol = FTGlobalLine()
        scenario = Scenario(
            faults=(
                "crash:count=2,at=200",
                "crash:count=2,at=1500",
                "crash:count=1,at=4000",
            ),
        )
        for seed in range(3):
            result = _run(protocol, 14, seed, "indexed", scenario)
            assert result.converged
            assert len(survivors(result.config)) == 9
            assert protocol.target_reached(compact_survivors(result.config))

    def test_simple_line_is_not_fault_tolerant(self):
        # The contrast that motivates the protocol: under the same
        # mid-run crashes the plain line frequently strands leaderless
        # fragments (or never re-stabilizes at all).
        protocol = SimpleGlobalLine()
        failures = 0
        for seed in range(8):
            result = _run(
                protocol, 16, seed, "indexed",
                Scenario(faults=("crash:count=3,at=300",)),
                max_steps=2_000_000,
            )
            ok = result.converged and protocol.target_reached(
                compact_survivors(result.config)
            )
            failures += not ok
        assert failures > 0


class TestEdgeLossRecovery:
    """The flipped blind-spot regression: before ``on_edge_loss``
    landed, environment edge deletions wrecked the fault-tolerant line
    exactly like the plain one (the hook existed for crashes only).
    Notified deletions are now part of its repair surface, so these
    assert recovery — if the hook wiring regresses, they flip back."""

    def test_ft_line_edge_loss_mirrors_the_crash_map(self):
        protocol = FTGlobalLine()
        for state in ("q0", "q1", "q2", "l", "w", "r"):
            assert protocol.on_edge_loss(state) == (
                protocol.on_neighbor_crash(state)
            )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_ft_line_recovers_from_a_scheduled_cut(self, engine):
        # Build the line to completion, then cut one of its actual
        # edges and require a re-stabilized spanning line.
        from repro.core.scenario import make_scenario_engine

        protocol = FTGlobalLine()
        built = run_to_convergence(protocol, 8, seed=21)
        assert protocol.target_reached(built.config)
        u, v = sorted(built.config.active_edges())[1]
        scenario = Scenario(faults=(f"cut:edges={u}-{v},at=10",))
        sim = make_scenario_engine(engine, 22, scenario)
        result = sim.run(
            protocol, 8, 5_000_000, config=built.config,
            require_convergence=False,
        )
        assert result.converged
        assert protocol.target_reached(result.config)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_ft_line_recovers_from_sustained_edge_drop(self, engine):
        protocol = FTGlobalLine()
        scenario = Scenario(faults=("edge-drop:rate=0.0005",))
        for seed in range(2):
            result = _run(protocol, 10, seed, engine, scenario)
            assert result.converged
            assert protocol.target_reached(result.config), (
                f"seed {seed} did not re-stabilize after notified drops"
            )

    def test_simple_line_is_still_blind_to_edge_loss(self):
        # The contrast pin: without the hook, cutting one interior edge
        # of a finished plain line is unrepairable — no rule ever
        # reconnects two q2 stubs.
        from repro.core.scenario import make_scenario_engine

        protocol = SimpleGlobalLine()
        built = run_to_convergence(protocol, 8, seed=21)
        interior = [
            (u, v) for u, v in sorted(built.config.active_edges())
            if built.config.state(u) == "q2" and built.config.state(v) == "q2"
        ]
        scenario = Scenario(faults=(f"cut:edges={interior[0][0]}-{interior[0][1]},at=10",))
        sim = make_scenario_engine("indexed", 22, scenario)
        result = sim.run(
            protocol, 8, 2_000_000, config=built.config,
            require_convergence=False,
        )
        assert not protocol.target_reached(result.config)


class TestJoinStateValidation:
    def test_population_events_need_an_initial_state(self):
        protocol = SimpleGlobalLine()
        protocol.initial_state = None  # structured-protocol shape
        with pytest.raises(SimulationError, match="initial_state"):
            _run(
                protocol, 6, 0, "indexed",
                Scenario(faults=("arrive:count=1,at=10",)),
                max_steps=100_000,
            )
