"""Legacy setup shim.

This offline environment lacks the ``wheel`` package that setuptools'
PEP-660 editable installs require, so ``pip install -e .`` falls back to
``setup.py develop`` via this shim.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
