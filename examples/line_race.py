#!/usr/bin/env python3
"""The spanning-line race: Protocols 1, 2 and 10 head to head.

The spanning line is the key to universality (Section 6), and the paper
gives three constructors with different size/time trade-offs:

* Simple-Global-Line — 5 states, Ω(n⁴)/O(n⁵): merge lines, random-walk
  the leader to an endpoint.
* Fast-Global-Line — 9 states, O(n³): never merge; steal one node at a
  time from sleeping lines.
* Faster-Global-Line — 6 states, conjectured improvement (Section 7):
  defeated lines actively dissolve.

This example regenerates the paper's experimental comparison, prints the
measured sweep, fits the growth exponents, and reports the crossover
where Fast overtakes Simple (Fast pays bigger constants per operation).

Run:  python examples/line_race.py          (~1 minute)
"""

from repro.analysis import crossover_size, fit_power_law, measure_convergence
from repro.protocols import FasterGlobalLine, FastGlobalLine, SimpleGlobalLine

SIZES = [10, 16, 24, 34, 44]
TRIALS = 10


def main() -> None:
    racers = [SimpleGlobalLine, FastGlobalLine, FasterGlobalLine]
    sweeps = {}
    for cls in racers:
        name = cls().name
        sweeps[name] = measure_convergence(cls, SIZES, TRIALS, base_seed=1)

    print(f"{'n':>5}", end="")
    for name in sweeps:
        print(f"{name:>22}", end="")
    print()
    for n in SIZES:
        print(f"{n:>5}", end="")
        for name in sweeps:
            print(f"{sweeps[name][n].mean:>22,.0f}", end="")
        print()

    print("\nfitted growth orders (paper: Ω(n⁴)/O(n⁵), O(n³), open):")
    for name, sweep in sweeps.items():
        fit = fit_power_law(SIZES, [sweep[n].mean for n in SIZES])
        print(f"  {name:>22}: {fit.describe()}")

    simple = [sweeps["Simple-Global-Line"][n].mean for n in SIZES]
    fast = [sweeps["Fast-Global-Line"][n].mean for n in SIZES]
    cross = crossover_size(SIZES, fast, simple)
    print(f"\nFast-Global-Line overtakes Simple-Global-Line from n ≈ {cross}")
    faster = [sweeps["Faster-Global-Line"][n].mean for n in SIZES]
    speedup = fast[-1] / faster[-1]
    print(f"Faster-Global-Line speedup over Fast at n={SIZES[-1]}: "
          f"{speedup:.1f}x (the paper leaves its asymptotics open)")


if __name__ == "__main__":
    main()
