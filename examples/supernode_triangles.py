#!/usr/bin/env python3
"""Supernodes with names and memories (Theorem 18), and why they matter.

A population of anonymous constant-memory agents organizes into k
"supernodes" — lines of ~log2(k) agents — each storing its unique name in
binary across its members.  With names and logarithmic memory, otherwise
hard constructions become trivial and fully parallel: here, the paper's
triangle partition (supernode i bonds to i+2 if 3 | i, else to i-1).

Run:  python examples/supernode_triangles.py
"""

import networkx as nx

from repro.generic import (
    layout_configuration,
    organize_supernodes,
    read_names,
    realize_supernode_network,
    triangle_partition,
)
from repro.viz import render_line


def main() -> None:
    n = 100
    layout = organize_supernodes(n)
    config = layout_configuration(layout)

    print(f"population of {n} anonymous agents")
    print(f"  -> k = {layout.k} supernodes, each a line of "
          f"{layout.line_length} agents (= log2 k bits of memory)")
    print(f"  -> waste: {len(layout.waste_agents)} agents\n")

    print("each supernode stores its own name in its agents' states:")
    names = read_names(layout, config)
    for line in layout.supernodes[:6]:
        print(f"  supernode {line.name:>2} = {render_line(config, line.agents)}")
    print(f"  ... names decoded from agent states: {names}\n")

    network = triangle_partition(layout)
    agent_config = realize_supernode_network(layout, network)
    triangles = [c for c in nx.connected_components(network) if len(c) == 3]
    print(f"triangle partition via local id arithmetic: "
          f"{len(triangles)} triangles")
    for tri in sorted(map(sorted, triangles)):
        endpoints = [layout.supernodes[i].right for i in tri]
        print(f"  supernodes {tri} -> agent-level bonds among {endpoints}")
    leftover = layout.k % 3
    if leftover:
        print(f"  ({leftover} supernode(s) left unpaired: k = 4·2^i is "
              f"never divisible by 3)")
    assert agent_config.n_active_edges > 0


if __name__ == "__main__":
    main()
