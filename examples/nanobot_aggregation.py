#!/usr/bin/env python3
"""The paper's motivating scenario: nanodevices in a circulatory system.

Tiny devices injected into a bloodstream cannot control their mobility —
the blood flow alone decides who meets whom (the adversarial scheduler).
Yet by running the same 2-state code, they self-organize into a hub
(spanning star) for aggregation/monitoring; and because the environment,
not the devices, schedules interactions, the same code keeps working even
when parts of the population circulate poorly (a biased-but-fair
scheduler).

Run:  python examples/nanobot_aggregation.py
"""

import random

from repro.core.graphs import is_spanning_star
from repro.core.scheduler import AdversarialLaggardScheduler, UniformRandomScheduler
from repro.core.simulator import SequentialSimulator
from repro.protocols import GlobalStar

DEVICES = 20


def deploy(scheduler, label: str, seed: int) -> None:
    protocol = GlobalStar()
    sim = SequentialSimulator(scheduler=scheduler, seed=seed)
    result = sim.run(protocol, DEVICES, max_steps=5_000_000)
    graph = result.config.output_graph()
    hub = max(graph.degree(), key=lambda nd: nd[1])[0]
    print(f"  [{label}]")
    print(f"    stabilized: {result.converged} "
          f"after {result.steps:,} encounters")
    print(f"    hub formed: {is_spanning_star(graph)} "
          f"(device {hub} with {graph.degree(hub)} bonded peers)")


def main() -> None:
    print(f"Deploying {DEVICES} devices running the 2-state star code:")
    print("  rule 1: two unbonded hubs meet   -> one defers, they bond")
    print("  rule 2: two bonded peers meet    -> they unbond (repel)")
    print("  rule 3: hub meets unbonded peer  -> they bond (attract)\n")

    deploy(UniformRandomScheduler(), "well-mixed flow", seed=7)

    # A fair-but-hostile environment: devices 0-4 are stuck in a slow
    # capillary and rarely interact.  Fairness still guarantees the star.
    sluggish = AdversarialLaggardScheduler(lagged=set(range(5)), bias=0.9)
    deploy(sluggish, "five devices in a slow capillary", seed=7)

    # Monte-Carlo reliability estimate over many deployments.
    random.seed(0)
    successes = 0
    trials = 30
    for seed in range(trials):
        sim = SequentialSimulator(scheduler=UniformRandomScheduler(), seed=seed)
        result = sim.run(GlobalStar(), DEVICES, max_steps=5_000_000)
        successes += is_spanning_star(result.config.output_graph())
    print(f"\n  reliability: {successes}/{trials} deployments "
          f"stabilized to the hub topology")


if __name__ == "__main__":
    main()
