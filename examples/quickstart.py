#!/usr/bin/env python3
"""Quickstart: construct a spanning star and a spanning line.

The one-minute tour of the library: instantiate a protocol from the
paper, run it to stabilization under the uniform random scheduler, and
inspect the stable network.

Run:  python examples/quickstart.py
"""

from repro import run_to_convergence
from repro.core.graphs import is_spanning_line, is_spanning_star
from repro.protocols import FastGlobalLine, GlobalStar
from repro.viz import component_summary, render_star

N = 25


def main() -> None:
    # --- The 2-state spanning star (the paper's motivating example) ----
    star = GlobalStar()
    result = run_to_convergence(star, N, seed=2014)
    print(f"{star.name}: |Q| = {star.size} states")
    print(f"  converged after {result.steps:,} scheduler steps "
          f"({result.effective_steps} effective interactions)")
    print(f"  is a spanning star: "
          f"{is_spanning_star(result.config.output_graph())}")
    print(f"  {render_star(result.config)}")

    # --- The O(n^3) spanning line (Protocol 2) -------------------------
    line = FastGlobalLine()
    result = run_to_convergence(line, N, seed=2014)
    print(f"\n{line.name}: |Q| = {line.size} states")
    print(f"  converged after {result.steps:,} scheduler steps")
    print(f"  is a spanning line: "
          f"{is_spanning_line(result.config.output_graph())}")
    print("  stable components:")
    print(component_summary(result.config))


if __name__ == "__main__":
    main()
