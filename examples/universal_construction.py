#!/usr/bin/env python3
"""Universal construction (Theorem 14 / Figure 3), end to end.

Builds a member of a decidable graph language on half the population:

1. the (U, D) layout holds a matched simulator/useful-space pair;
2. every edge of the useful space receives a fair coin through the
   Figure 6 interaction machinery (select -> mark -> toss -> ack);
3. the drawn graph is decided by a *real Turing machine* that itself runs
   on a line of agents via the Figure 5 head-mark mechanics;
4. reject -> redraw (the Figure 3 loop); accept -> release the useful
   space.

Also demonstrates the log-waste (Theorem 16) and no-waste (Theorem 17)
variants on a heavier language (connectivity).

Run:  python examples/universal_construction.py
"""

import networkx as nx

from repro.generic import (
    LogWasteConstructor,
    NoWasteConstructor,
    UniversalConstructor,
)
from repro.tm.deciders import registry


def main() -> None:
    deciders = registry()

    # --- Theorem 14, full fidelity on the 'even number of edges' language
    print("=== Theorem 14: linear waste, rule-level, TM decided on agents ===")
    uc = UniversalConstructor(
        deciders["even-edges"], rule_level=True, decide_on_line=True
    )
    report = uc.construct(16, seed=42)
    print(f"  population 16 -> useful space {report.useful_space}, "
          f"waste {report.waste}")
    print(f"  loop iterations: {report.attempts} "
          f"(language density 1/2 -> geometric repeats)")
    print(f"  pairwise interactions simulated: {report.interaction_steps:,}")
    print(f"  constructed graph: {report.graph.number_of_edges()} edges "
          f"(even: {report.graph.number_of_edges() % 2 == 0})")

    # --- Theorem 16: logarithmic waste via the self-counting line -------
    print("\n=== Theorem 16: logarithmic waste (population counts itself) ===")
    lw = LogWasteConstructor(deciders["connected"], count_on_line=True)
    lreport = lw.construct(24, seed=7)
    print(f"  population 24: the line counted ~{lreport.counted_value} free "
          f"cells into {lreport.memory_cells} memory cells "
          f"({lreport.counting_interactions:,} interactions)")
    print(f"  useful space {lreport.useful_space}, waste {lreport.waste}")
    print(f"  constructed a connected graph in {lreport.attempts} draws: "
          f"{nx.is_connected(lreport.graph)}")

    # --- Theorem 17: no waste at all ------------------------------------
    print("\n=== Theorem 17: zero waste (the simulator is part of the output) ===")
    nw = NoWasteConstructor(deciders["connected"])
    nreport = nw.construct(24, seed=9)
    print(f"  population 24 -> graph on all {nreport.graph.number_of_nodes()} "
          f"nodes (waste {nreport.waste})")
    print(f"  bounded-degree core: nodes {nreport.core_nodes} "
          f"(degree <= {nreport.core_degree_bound})")
    print(f"  connected: {nx.is_connected(nreport.graph)} "
          f"after {nreport.attempts} draws")


if __name__ == "__main__":
    main()
