"""Repo-root pytest configuration.

Puts ``src/`` on ``sys.path`` (so a bare ``pytest`` works without
``PYTHONPATH=src``) and loads the conformance plugin that parametrizes
any ``conformance_case`` test over the full (registered protocol x
check) grid — see ``repro.testing.plugin``.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))

pytest_plugins = ("repro.testing.plugin",)
