"""Perf smoke test — the engine benchmark with its acceptance gate.

Runs :func:`repro.analysis.bench.bench_engines` (all three engines on the
Figure 2 line sweep and the Figure 1 star run), writes the
machine-readable perf trajectory to ``BENCH_engines.json`` at the repo
root, and asserts the state-indexed engine's headline speedup.

Not collected by the default ``pytest`` run (the filename carries no
``test_`` prefix, keeping tier-1 fast); invoke explicitly::

    PYTHONPATH=src python -m pytest benchmarks/perf_smoke.py -s

or run the same workload via ``python -m repro.cli bench``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.bench import bench_engines, format_bench

#: The acceptance bar: indexed vs agitated wall-clock on the Figure 2
#: line workload at the largest swept size (measured ~15x at n=480).
MIN_SPEEDUP = 5.0

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engines.json"


def test_perf_smoke():
    record = bench_engines(out=str(OUT_PATH))
    print("\n" + format_bench(record))

    headline = record["speedup_indexed_vs_agitated"]
    assert headline["speedup"] >= MIN_SPEEDUP, (
        f"indexed engine only {headline['speedup']:.1f}x faster than "
        f"agitated at n={headline['n']} (need >= {MIN_SPEEDUP}x)"
    )
    # Every engine must actually have finished its workload.
    assert all(cell["converged"] for cell in record["cells"])


if __name__ == "__main__":
    test_perf_smoke()
