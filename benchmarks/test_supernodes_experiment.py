"""Experiment SN — Theorem 18: partitioning into k supernodes of length
~log2 k with unique names, and the triangle-partition application.
"""

from __future__ import annotations

import networkx as nx

from repro.generic import (
    layout_configuration,
    organize_supernodes,
    read_names,
    triangle_partition,
)


def test_supernode_scaling(benchmark):
    print("\n=== Theorem 18 / supernode organization ===")
    print(f"{'n':>6} {'k':>5} {'line len':>9} {'k*len':>7} {'waste':>6}")
    for n in (8, 20, 50, 120, 300, 700):
        layout = organize_supernodes(n)
        used = layout.k * layout.line_length
        print(
            f"{n:>6} {layout.k:>5} {layout.line_length:>9} {used:>7} "
            f"{len(layout.waste_agents):>6}"
        )
        assert used + len(layout.waste_agents) == n
        # line length = log2(k): the promised logarithmic local memory
        assert 2 ** layout.line_length >= layout.k
    benchmark.pedantic(lambda: organize_supernodes(300), rounds=5, iterations=1)


def test_supernode_names_and_triangles(benchmark):
    layout = organize_supernodes(100)  # k = 16 lines of length 4
    config = layout_configuration(layout)
    names = read_names(layout, config)
    assert names == list(range(layout.k))
    network = triangle_partition(layout)
    triangles = [
        c for c in nx.connected_components(network) if len(c) == 3
    ]
    print(
        f"\nTheorem 18 application: k={layout.k} supernodes -> "
        f"{len(triangles)} triangles + {layout.k % 3} isolated"
    )
    assert len(triangles) == layout.k // 3
    for tri in triangles:
        assert network.subgraph(tri).number_of_edges() == 3
    benchmark.pedantic(
        lambda: triangle_partition(organize_supernodes(100)),
        rounds=5,
        iterations=1,
    )
