"""Experiment T2 — regenerate Table 2: protocol sizes and expected times
for the direct constructors of Sections 4-5.

Static part: |Q| must match the paper's size column exactly.  Dynamic
part: mean convergence times over size sweeps, with growth-order fits
checked against the paper's upper/lower bound windows.
"""

from __future__ import annotations

import networkx as nx

from benchmarks.conftest import fitted_exponent, print_sweep, sweep
from repro.analysis import run_trials
from repro.protocols import (
    CCliques,
    CycleCover,
    FastGlobalLine,
    GlobalRing,
    GlobalStar,
    GraphReplication,
    KRegularConnected,
    SimpleGlobalLine,
    SpanningNetwork,
    TwoRegularConnected,
)


def test_table2_protocol_sizes(benchmark):
    """The '# states' column of Table 2."""
    rows = [
        ("Simple-Global-Line", SimpleGlobalLine().size, 5),
        ("Fast-Global-Line", FastGlobalLine().size, 9),
        ("Cycle-Cover", CycleCover().size, 3),
        ("Global-Star", GlobalStar().size, 2),
        # The journal's Protocol 5 state listing has 10 states (the
        # printed Table 2 still says 9, predating the bugfix's l-bar).
        ("Global-Ring", GlobalRing().size, 10),
        ("2RC", TwoRegularConnected().size, 6),
        ("3RC", KRegularConnected(3).size, 2 * (3 + 1)),
        ("4RC", KRegularConnected(4).size, 2 * (4 + 1)),
        ("3-Cliques", CCliques(3).size, 5 * 3 - 3),
        ("5-Cliques", CCliques(5).size, 5 * 5 - 3),
        ("Graph-Replication", GraphReplication(nx.path_graph(3)).size, 12),
        ("Spanning-Network", SpanningNetwork().size, 2),
    ]
    print("\n=== Table 2 / protocol sizes ===")
    for name, measured, paper in rows:
        print(f"{name:>20}: |Q| = {measured:>2}  (paper: {paper})")
        assert measured == paper, name
    benchmark.pedantic(lambda: [SimpleGlobalLine(), FastGlobalLine()],
                       rounds=3, iterations=1)


def test_table2_simple_global_line_time(benchmark):
    """Simple-Global-Line: Ω(n⁴) and O(n⁵) — exponent in [3.3, 5.3]."""
    means = sweep(SimpleGlobalLine, (8, 12, 16, 22), 12)
    print_sweep("Table 2 / Simple-Global-Line (Ω(n⁴), O(n⁵))", means)
    fit = fitted_exponent(means)
    print(f"fitted: {fit.describe()}")
    assert 3.0 < fit.exponent < 5.5, fit.describe()
    benchmark.pedantic(
        lambda: run_trials(SimpleGlobalLine, 12, 2), rounds=2, iterations=1
    )


def test_table2_fast_global_line_time(benchmark):
    """Fast-Global-Line: O(n³) — exponent below ~3.4 and clearly below
    Simple-Global-Line's."""
    means = sweep(FastGlobalLine, (8, 12, 16, 24, 32), 12)
    print_sweep("Table 2 / Fast-Global-Line (O(n³))", means)
    fit = fitted_exponent(means)
    print(f"fitted: {fit.describe()}")
    assert 2.0 < fit.exponent < 3.5, fit.describe()
    benchmark.pedantic(
        lambda: run_trials(FastGlobalLine, 16, 2), rounds=2, iterations=1
    )


def test_table2_cycle_cover_time(benchmark):
    """Cycle-Cover: Θ(n²) optimal."""
    means = sweep(CycleCover, (12, 18, 27, 40), 20)
    print_sweep("Table 2 / Cycle-Cover (Θ(n²))", means)
    fit = fitted_exponent(means)
    print(f"fitted: {fit.describe()}")
    assert 1.6 < fit.exponent < 2.4, fit.describe()
    benchmark.pedantic(
        lambda: run_trials(CycleCover, 18, 4), rounds=3, iterations=1
    )


def test_table2_global_star_time(benchmark):
    """Global-Star: Θ(n² log n) optimal — exponent ~2 after dividing the
    log factor."""
    means = sweep(GlobalStar, (12, 18, 27, 40), 20)
    print_sweep("Table 2 / Global-Star (Θ(n² log n))", means)
    fit = fitted_exponent(means, log_power=1)
    print(f"fitted: {fit.describe()}")
    assert 1.6 < fit.exponent < 2.4, fit.describe()
    benchmark.pedantic(
        lambda: run_trials(GlobalStar, 18, 4), rounds=3, iterations=1
    )


def test_table2_replication_time(benchmark):
    """Graph-Replication: Θ(n⁴ log n) — steep growth, exponent >= ~3.5
    with the log divided out (small-n fits run a bit below the
    asymptotic order)."""

    def factory_for(n1):
        return lambda: GraphReplication(nx.path_graph(n1))

    sizes = (6, 8, 10, 12)  # population = 2 * |V1|
    means = {}
    for n in sizes:
        means[n] = sweep(factory_for(n // 2), (n,), 8,
                         check_interval=4)[n]
    print_sweep("Table 2 / Graph-Replication (Θ(n⁴ log n))", means)
    fit = fitted_exponent(means, log_power=1)
    print(f"fitted: {fit.describe()}")
    assert fit.exponent > 2.5, fit.describe()
    benchmark.pedantic(
        lambda: run_trials(factory_for(4), 8, 2, check_interval=4),
        rounds=2, iterations=1,
    )


def test_table2_spanning_network_time(benchmark):
    """Spanning-Network (Theorem 1): Θ(n log n), matching the generic
    lower bound."""
    means = sweep(SpanningNetwork, (16, 32, 64, 128), 20)
    print_sweep("Table 2 / Spanning-Network (Θ(n log n))", means)
    fit = fitted_exponent(means, log_power=1)
    print(f"fitted: {fit.describe()}")
    assert 0.6 < fit.exponent < 1.4, fit.describe()
    benchmark.pedantic(
        lambda: run_trials(SpanningNetwork, 32, 5), rounds=3, iterations=1
    )


def test_table2_who_wins_fast_vs_simple(benchmark):
    """The headline Table 2 comparison: Fast-Global-Line's O(n³) beats
    Simple-Global-Line's Ω(n⁴) asymptotically.  Fast pays larger
    constants (each steal is a multi-interaction handshake), so Simple
    wins at small n; the measured crossover falls near n ≈ 35, and the
    simple/fast ratio grows roughly linearly beyond it."""
    sizes = (12, 20, 30, 40, 48)
    simple = sweep(SimpleGlobalLine, sizes, 10)
    fast = sweep(FastGlobalLine, sizes, 10)
    print("\n=== Table 2 / Simple vs Fast Global Line ===")
    print(f"{'n':>6} {'simple':>12} {'fast':>12} {'ratio':>8}")
    ratios = []
    for n in sizes:
        ratio = simple[n].mean / fast[n].mean
        ratios.append(ratio)
        print(f"{n:>6} {simple[n].mean:>12.0f} {fast[n].mean:>12.0f} {ratio:>8.2f}")
    assert fast[48].mean < simple[48].mean  # Fast wins past the crossover
    assert ratios[-1] > ratios[0]  # and the gap widens with n
    benchmark.pedantic(
        lambda: run_trials(FastGlobalLine, 12, 2), rounds=2, iterations=1
    )
