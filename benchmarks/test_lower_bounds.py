"""Experiment LB — the paper's lower bounds as executable floors
(Theorems 1, 2, 5, 6, 8): measured mean convergence times must dominate
the analytic expressions derived in the proofs.
"""

from __future__ import annotations

import statistics

from repro.analysis import run_trials
from repro.protocols import (
    CycleCover,
    FastGlobalLine,
    GlobalRing,
    GlobalStar,
    SpanningNetwork,
    TwoRegularConnected,
)
from repro.protocols.bounds import (
    cycle_cover_lower_bound,
    spanning_line_lower_bound,
    spanning_network_lower_bound,
    spanning_ring_lower_bound,
    spanning_star_lower_bound,
)

TRIALS = 15
SLACK = 0.85  # measured means may sit slightly below an exact floor


def check(factory, bound, n, benchmark=None, **kwargs):
    times = run_trials(factory, n, TRIALS, **kwargs)
    mean = statistics.fmean(times)
    floor = bound(n)
    print(f"\n{factory().name}: measured mean {mean:.0f} vs floor {floor:.0f} (n={n})")
    assert mean >= SLACK * floor, (mean, floor)
    if benchmark is not None:
        benchmark.pedantic(
            lambda: run_trials(factory, n, 2, **kwargs), rounds=2, iterations=1
        )
    return mean, floor


def test_lb_spanning_network(benchmark):
    """Theorem 1: any spanning construction needs Ω(n log n)."""
    check(SpanningNetwork, spanning_network_lower_bound, 60, benchmark=benchmark)


def test_lb_spanning_line(benchmark):
    """Theorem 2: spanning lines need Ω(n²); checked against the fastest
    line protocol."""
    check(FastGlobalLine, spanning_line_lower_bound, 24, benchmark=benchmark)


def test_lb_spanning_ring(benchmark):
    """Theorem 8: spanning rings need Ω(n²) — both ring protocols."""
    check(GlobalRing, spanning_ring_lower_bound, 12, benchmark=benchmark)
    check(TwoRegularConnected, spanning_ring_lower_bound, 12)


def test_lb_cycle_cover(benchmark):
    """Theorem 5: the cycle-cover floor n(n-1)/12 — the protocol is
    time-optimal, so the measured mean sits within a small constant of
    the Θ(n²) floor."""
    mean, floor = check(CycleCover, cycle_cover_lower_bound, 40, benchmark=benchmark)
    assert mean < 24 * floor  # optimality: same Θ(n²) order


def test_lb_spanning_star(benchmark):
    """Theorem 6: the center's meet-everybody floor Θ(n² log n); the
    protocol is optimal so the measured mean also stays within a small
    constant of it."""
    mean, floor = check(GlobalStar, spanning_star_lower_bound, 30, benchmark=benchmark)
    assert mean < 8 * floor
