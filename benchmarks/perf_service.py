"""Perf smoke test for the experiment service's result store.

Runs :func:`repro.analysis.bench.bench_service` — the same sweep
submitted twice to a :class:`~repro.service.jobs.JobService` over a
fresh content-addressed store, then a cold run per worker count —
writes the machine-readable record to ``BENCH_service.json`` at the
repo root, and gates the cache contract:

* the warm submission is served 100% from the store,
* its result is byte-identical to the cold run's,
* the warm pass beats the cold pass by a wide margin (reading JSON
  records must not cost anything like running engines).

Not collected by the default ``pytest`` run (the filename carries no
``test_`` prefix, keeping tier-1 fast); invoke explicitly::

    PYTHONPATH=src python -m pytest benchmarks/perf_service.py -s

or run the same workload via ``python -m repro.cli bench --service``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.bench import bench_service, format_bench_service

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: A warm store must be at least this much faster than engines.  The
#: observed ratio is two orders of magnitude; 5x keeps slow CI hosts
#: green while still catching a cache that silently re-executes.
MIN_WARM_SPEEDUP = 5.0


def test_perf_service():
    record = bench_service(out=str(OUT_PATH))
    print()
    print(format_bench_service(record))
    print(f"\nwrote {OUT_PATH}")

    assert record["warm_hit_rate"] == 1.0, (
        f"warm submission missed the store: "
        f"{record['warm_cache_hits']}/{record['trial_count']} hits"
    )
    assert record["results_identical"], (
        "warm result is not byte-identical to the cold run"
    )
    assert record["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm cache speedup {record['warm_speedup']:.1f}x below "
        f"{MIN_WARM_SPEEDUP}x — is the store being consulted?"
    )
