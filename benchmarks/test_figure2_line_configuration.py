"""Experiment F2 — regenerate Figure 2: a typical mid-execution
configuration of Simple-Global-Line — a collection of leader-carrying
lines (l at an endpoint or w walking inside) and isolated q0 nodes.
"""

from __future__ import annotations

from repro.core.graphs import line_components
from repro.core.simulator import AgitatedSimulator
from repro.core.trace import Trace
from repro.protocols import SimpleGlobalLine
from repro.viz import component_summary, render_line

N = 30


def test_figure2_typical_configuration(benchmark):
    protocol = SimpleGlobalLine()
    trace = Trace(snapshot_predicate=lambda step, cfg: True)
    result = AgitatedSimulator(seed=23).run(protocol, N, None, trace=trace)
    assert result.converged

    # Pick the mid-execution snapshot with the most simultaneous lines.
    def line_count(cfg):
        return sum(
            1 for path in line_components(cfg.output_graph()) if len(path) > 1
        )

    step, snapshot = max(trace.snapshots, key=lambda sc: line_count(sc[1]))
    print(f"\n=== Figure 2: configuration at step {step} ===")
    print(component_summary(snapshot))

    lines = [p for p in line_components(snapshot.output_graph()) if len(p) > 1]
    isolated = [p for p in line_components(snapshot.output_graph()) if len(p) == 1]
    for path in lines:
        print("  " + render_line(snapshot, path))

    # Figure 2's invariant, on the most fragmented reachable snapshot:
    assert len(lines) >= 2, "expected several coexisting lines"
    for path in lines:
        states = [snapshot.state(u) for u in path]
        leaders = [s for s in states if s in ("l", "w")]
        assert len(leaders) == 1, states
        if "w" in states:
            w_at = states.index("w")
            assert 0 < w_at < len(states) - 1
        else:
            assert states[0] == "l" or states[-1] == "l"
    for path in isolated:
        assert snapshot.state(path[0]) == "q0"

    benchmark.pedantic(
        lambda: AgitatedSimulator(seed=3).run(SimpleGlobalLine(), 16, None),
        rounds=2,
        iterations=1,
    )
