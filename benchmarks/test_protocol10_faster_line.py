"""Experiment P10 — the Section 7 experimental comparison the paper
reports for Protocol 10: Faster-Global-Line vs Fast-Global-Line (and
Simple-Global-Line as the baseline).

The paper: "there is an improvement (which is also supported by
experimental evidence) to the Fast-Global-Line protocol, however it is
not yet clear whether this improvement is also an asymptotic one."  We
regenerate that evidence: paired-seed sweeps and fitted exponents.
"""

from __future__ import annotations

from benchmarks.conftest import fitted_exponent, print_sweep, sweep
from repro.analysis import run_trials
from repro.protocols import FasterGlobalLine, FastGlobalLine, SimpleGlobalLine

# One tier beyond the seed's largest size (30): the state-indexed engine
# makes the n=44 cells affordable.
SIZES = (8, 12, 16, 22, 30, 44)
TRIALS = 15


def test_protocol10_head_to_head(benchmark):
    fast = sweep(FastGlobalLine, SIZES, TRIALS)
    faster = sweep(FasterGlobalLine, SIZES, TRIALS)
    print("\n=== Protocol 10 / Fast vs Faster Global Line ===")
    print(f"{'n':>6} {'fast':>12} {'faster':>12} {'speedup':>9}")
    for n in SIZES:
        print(
            f"{n:>6} {fast[n].mean:>12.0f} {faster[n].mean:>12.0f} "
            f"{fast[n].mean / faster[n].mean:>9.2f}"
        )
    fit_fast = fitted_exponent(fast)
    fit_faster = fitted_exponent(faster)
    print(f"fast   : {fit_fast.describe()}")
    print(f"faster : {fit_faster.describe()}")
    # The paper's experimental claim: Faster improves on Fast (whether
    # asymptotically is open; we assert the measured improvement).
    assert faster[SIZES[-1]].mean < fast[SIZES[-1]].mean
    benchmark.pedantic(
        lambda: run_trials(FasterGlobalLine, 16, 3), rounds=3, iterations=1
    )


def test_protocol10_against_simple_baseline(benchmark):
    sizes = (8, 12, 16, 22)
    simple = sweep(SimpleGlobalLine, sizes, 10)
    faster = sweep(FasterGlobalLine, sizes, 10)
    print_sweep("Protocol 10 / Simple-Global-Line baseline", simple)
    print_sweep("Protocol 10 / Faster-Global-Line", faster)
    assert faster[22].mean < simple[22].mean
    benchmark.pedantic(
        lambda: run_trials(FasterGlobalLine, 12, 3), rounds=3, iterations=1
    )
