"""Experiment F6 — regenerate Figure 6: counter-addressed D-node marking
and edge read/write through the vertical matching.

Series reported: interaction steps per addressed edge operation as a
function of the number of (U, D) pairs, plus the fairness of the
rule-level coin used by the drawing phase.
"""

from __future__ import annotations

from repro.analysis import fit_power_law
from repro.core.simulator import AgitatedSimulator
from repro.generic import ACTIVATE, COIN, DEACTIVATE, AddressedEdgeOps


def run_op(ops, config, i, j, op, seed):
    ops.select(config, i, j, op)
    result = AgitatedSimulator(seed=seed).run(
        ops, config.n, None, config=config, copy_config=False
    )
    ops.clear_acks(config)
    return result.steps


def test_figure6_cost_per_edge_operation(benchmark):
    sizes = (4, 6, 9, 14)
    print("\n=== Figure 6 / addressed edge-op cost ===")
    print(f"{'pairs k':>8} {'mean steps/op':>14}")
    means = []
    for k in sizes:
        ops = AddressedEdgeOps(k)
        config = ops.initial_configuration(2 * k)
        total = 0
        count = 0
        for seed in range(12):
            i, j = seed % k, (seed + 1 + seed // k) % k
            if i == j:
                continue
            total += run_op(ops, config, i, j, ACTIVATE if seed % 2 else DEACTIVATE, seed)
            count += 1
        means.append(total / count)
        print(f"{k:>8} {means[-1]:>14.1f}")
    fit = fit_power_law(sizes, means)
    print(f"fit: {fit.describe()}")
    # each op waits for specific pairs among ~ (2k)² choices
    assert 1.2 < fit.exponent < 2.8, fit.describe()
    ops = AddressedEdgeOps(5)

    def one_op():
        config = ops.initial_configuration(10)
        run_op(ops, config, 0, 3, ACTIVATE, 1)

    benchmark.pedantic(one_op, rounds=5, iterations=1)


def test_figure6_rule_level_coin_fairness(benchmark):
    """The PREL coin applied by the marked D-D interaction activates the
    addressed edge with probability 1/2."""
    ops = AddressedEdgeOps(3)
    activations = 0
    trials = 300
    for seed in range(trials):
        config = ops.initial_configuration(6)
        run_op(ops, config, 0, 2, COIN, seed)
        activations += config.edge_state(ops.d_agent(0), ops.d_agent(2))
    rate = activations / trials
    print(f"\nFigure 6 coin: activation rate {rate:.3f} over {trials} tosses")
    assert 0.42 < rate < 0.58

    def one_coin():
        config = ops.initial_configuration(6)
        run_op(ops, config, 0, 1, COIN, 7)

    benchmark.pedantic(one_coin, rounds=5, iterations=1)
