"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it prints
the measured rows/series (visible with ``pytest -s``) and asserts the
qualitative *shape* the paper reports — growth orders, who-beats-whom,
stage structure — not absolute step counts.
"""

from __future__ import annotations

import statistics

from repro.analysis import fit_power_law, measure_convergence


def sweep(protocol_factory, sizes, trials, *, measure="output", base_seed=0,
          check_interval=1, engine="indexed"):
    """Mean convergence times across population sizes — thin wrapper over
    :func:`repro.analysis.measure_convergence`.

    ``engine`` selects a :data:`repro.core.simulator.ENGINES` entry; the
    default state-indexed engine is what lets the sweeps reach sizes the
    per-node-rescan engine could not."""
    return measure_convergence(
        protocol_factory, sizes, trials,
        measure=measure, base_seed=base_seed,
        check_interval=check_interval, engine=engine,
    )


def fitted_exponent(means, log_power=0):
    """Fit the polynomial exponent of a sweep's mean curve."""
    sizes = sorted(means)
    return fit_power_law(
        sizes, [means[n].mean for n in sizes], log_power=log_power
    )


def print_sweep(title, means, extra=None):
    print(f"\n=== {title} ===")
    header = f"{'n':>6} {'mean steps':>14} {'±95%':>10}"
    if extra:
        header += f" {extra[0]:>16}"
    print(header)
    for n in sorted(means):
        s = means[n]
        row = f"{n:>6} {s.mean:>14.1f} {s.ci95_halfwidth:>10.1f}"
        if extra:
            row += f" {extra[1](n):>16.1f}"
        print(row)


def single_run_stats(times):
    return statistics.fmean(times), statistics.stdev(times)
