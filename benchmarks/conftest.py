"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it prints
the measured rows/series (visible with ``pytest -s``) and asserts the
qualitative *shape* the paper reports — growth orders, who-beats-whom,
stage structure — not absolute step counts.
"""

from __future__ import annotations

import os
import statistics

from repro.analysis import fit_power_law, measure_convergence
from repro.analysis.runner import ExperimentSpec, Runner
from repro.protocols import registry


def sweep(protocol, sizes, trials, *, measure="output", base_seed=0,
          check_interval=1, engine="indexed", seed_policy="hashed",
          jobs=None):
    """Mean convergence times across population sizes.

    ``protocol`` may be a registry spec string, a registered protocol
    class, or any zero-argument factory.  Registry-resolvable protocols
    run as a declarative :class:`ExperimentSpec` through the
    :class:`Runner` (set ``jobs`` or ``REPRO_BENCH_JOBS`` to fan trials
    across cores); other factories fall back to
    :func:`repro.analysis.measure_convergence`.

    ``engine`` selects a :data:`repro.core.simulator.ENGINES` entry; the
    default state-indexed engine is what lets the sweeps reach sizes the
    per-node-rescan engine could not."""
    spec_str = (
        protocol if isinstance(protocol, str)
        else registry.name_for_factory(protocol)
    )
    if spec_str is not None:
        spec = ExperimentSpec(
            protocol=spec_str, sizes=tuple(sizes), trials=trials,
            engine=engine, measure=measure, seed_policy=seed_policy,
            base_seed=base_seed, check_interval=check_interval,
        )
        if jobs is None:
            jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
        return Runner(jobs=jobs).run(spec).summaries()
    return measure_convergence(
        protocol, sizes, trials,
        measure=measure, base_seed=base_seed,
        check_interval=check_interval, engine=engine,
        seed_policy=seed_policy,
    )


def fitted_exponent(means, log_power=0):
    """Fit the polynomial exponent of a sweep's mean curve."""
    sizes = sorted(means)
    return fit_power_law(
        sizes, [means[n].mean for n in sizes], log_power=log_power
    )


def print_sweep(title, means, extra=None):
    print(f"\n=== {title} ===")
    header = f"{'n':>6} {'mean steps':>14} {'±95%':>10}"
    if extra:
        header += f" {extra[0]:>16}"
    print(header)
    for n in sorted(means):
        s = means[n]
        row = f"{n:>6} {s.mean:>14.1f} {s.ci95_halfwidth:>10.1f}"
        if extra:
            row += f" {extra[1](n):>16.1f}"
        print(row)


def single_run_stats(times):
    return statistics.fmean(times), statistics.stdev(times)
