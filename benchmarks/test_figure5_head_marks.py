"""Experiment F5 — regenerate Figure 5: the TM head moving on a line of
agents via the t/l/r direction marks.

Series reported: interaction steps per simulated TM step as a function of
the line length (each head move waits for the specific head-neighbor
interaction: Θ(n²) of the n(n-1)/2 scheduler picks).
"""

from __future__ import annotations

from repro.analysis import fit_power_law
from repro.tm import run_machine_on_line, zigzag_nonempty_machine
from repro.tm.machine import BLANK


def tape_with_one_late_bit(length):
    bits = ["0"] * (length - 2) + ["1"]
    return bits + [BLANK]


def test_figure5_cost_per_tm_step(benchmark):
    machine = zigzag_nonempty_machine()
    sizes = (6, 10, 16, 24)
    rows = []
    print("\n=== Figure 5 / head movement cost on the agent line ===")
    print(f"{'cells':>6} {'TM steps':>9} {'interactions':>13} {'per-step':>10}")
    for n in sizes:
        tape = tape_with_one_late_bit(n)
        direct = machine.run(list(tape))
        tm_steps = direct.steps
        result, run, _ = run_machine_on_line(machine, tape, seed=n)
        assert result.accepted == direct.accepted
        per_step = run.steps / tm_steps
        rows.append((n, tm_steps, run.steps, per_step))
        print(f"{n:>6} {tm_steps:>9} {run.steps:>13} {per_step:>10.1f}")

    # Per-TM-step cost grows ~ n² (the head must hit one specific pair).
    fit = fit_power_law([r[0] for r in rows], [r[3] for r in rows])
    print(f"per-step cost fit: {fit.describe()}")
    assert 1.4 < fit.exponent < 2.6, fit.describe()

    benchmark.pedantic(
        lambda: run_machine_on_line(machine, tape_with_one_late_bit(10), seed=0),
        rounds=3,
        iterations=1,
    )


def test_figure5_mark_discipline(benchmark):
    """After the sweep, the marks always split l / head / r as drawn in
    Figure 5's fourth snapshot."""
    from repro.core.simulator import AgitatedSimulator
    from repro.core.trace import Trace
    from repro.tm import LineMachineProtocol
    from repro.tm.line_machine import MARK_L, MARK_R, head_of

    machine = zigzag_nonempty_machine()
    tape = tape_with_one_late_bit(12)
    protocol = LineMachineProtocol(machine, tape, head_at=len(tape) - 1)
    snaps = Trace(snapshot_predicate=lambda step, cfg: True)
    result = AgitatedSimulator(seed=7).run(protocol, len(tape), None, trace=snaps)
    assert result.converged
    checked = 0
    for _, config in snaps.snapshots:
        heads = [u for u in range(config.n) if head_of(config.state(u))]
        if len(heads) != 1:
            continue
        head = heads[0]
        if head_of(config.state(head))[0] not in ("tm", "halt"):
            continue
        for u in range(config.n):
            if u == head:
                continue
            expected = MARK_L if u < head else MARK_R
            assert config.state(u)[1] == expected
        checked += 1
    print(f"\nFigure 5 mark discipline verified on {checked} snapshots")
    assert checked > 0
    benchmark.pedantic(
        lambda: run_machine_on_line(machine, tape_with_one_late_bit(8), seed=1),
        rounds=3,
        iterations=1,
    )
