#!/usr/bin/env python
"""AST lint: no global random state inside ``src/repro/``.

Every stochastic choice in the simulator must flow through an explicit,
seeded generator (``random.Random(seed)``, ``numpy.random.default_rng``)
— that is what makes runs replayable, sweeps distributable across
processes, and the verifier's counterexample replay meaningful.  Calls
into the *module-level* convenience API (``random.randint(...)``,
``numpy.random.rand(...)``) share one hidden global stream and silently
break all of that, so this lint bans them outright.

Allowed: constructing generators (``random.Random``,
``random.SystemRandom``, ``numpy.random.default_rng``,
``numpy.random.RandomState``, ``numpy.random.Generator``,
``numpy.random.SeedSequence`` and the bit generators) and anything on an
instance — the lint only tracks names resolving to the modules
themselves, so ``rng.random()`` never trips it.

Usage::

    python benchmarks/lint_determinism.py [root ...]

Exits 1 listing ``file:line: call`` for every offender (default root:
``src/repro``).  Exercised by ``tests/test_determinism_lint.py`` and
run in the CI lint job.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Attributes of the ``random`` module that do not touch the global
#: stream: generator constructors only.
ALLOWED_RANDOM = frozenset({"Random", "SystemRandom"})

#: Attributes of ``numpy.random`` that construct explicit generators.
ALLOWED_NUMPY_RANDOM = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


def _dotted(node: ast.AST) -> str | None:
    """The dotted name of an expression (``np.random.rand``), or None
    when it is not a plain name/attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _Linter(ast.NodeVisitor):
    """One-module pass: resolve import aliases, then flag calls that
    resolve to ``random.*`` / ``numpy.random.*`` module-level API."""

    def __init__(self, path: Path) -> None:
        self.path = path
        #: local alias -> canonical module path ("random", "numpy", ...).
        self.aliases: dict[str, str] = {}
        self.violations: list[tuple[int, str]] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in ("random", "numpy", "numpy.random"):
                bound = alias.asname or alias.name.split(".")[0]
                canonical = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                self.aliases[bound] = canonical
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in ALLOWED_RANDOM:
                    self.violations.append((
                        node.lineno,
                        f"from random import {alias.name} "
                        "(module-level API uses the hidden global stream; "
                        "construct a random.Random(seed) instead)",
                    ))
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in ALLOWED_NUMPY_RANDOM:
                    self.violations.append((
                        node.lineno,
                        f"from numpy.random import {alias.name} "
                        "(use numpy.random.default_rng(seed))",
                    ))
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.aliases[alias.asname or "random"] = "numpy.random"
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            canonical = self.aliases.get(head)
            if canonical is not None and rest:
                full = f"{canonical}.{rest}"
                self._check(node.lineno, full)
        self.generic_visit(node)

    def _check(self, lineno: int, full: str) -> None:
        if full.startswith("random."):
            attr = full.split(".", 1)[1]
            if "." not in attr and attr not in ALLOWED_RANDOM:
                self.violations.append((
                    lineno,
                    f"{full}() uses the global random stream; construct "
                    "a random.Random(seed) and thread it through",
                ))
        elif full.startswith("numpy.random."):
            attr = full.split(".", 2)[2]
            if "." not in attr and attr not in ALLOWED_NUMPY_RANDOM:
                self.violations.append((
                    lineno,
                    f"{full}() uses the global numpy stream; use "
                    "numpy.random.default_rng(seed)",
                ))


def lint_source(source: str, path: Path) -> list[tuple[int, str]]:
    """Violations of one module's source, as (lineno, message) pairs."""
    linter = _Linter(path)
    linter.visit(ast.parse(source, filename=str(path)))
    return sorted(linter.violations)


def lint_tree(root: Path) -> list[str]:
    """Violations under ``root``, as ``file:line: message`` strings."""
    findings = []
    for path in sorted(root.rglob("*.py")):
        for lineno, message in lint_source(path.read_text(), path):
            findings.append(f"{path}:{lineno}: {message}")
    return findings


def main(argv: list[str] | None = None) -> int:
    roots = [Path(p) for p in (argv or sys.argv[1:])] or [Path("src/repro")]
    findings: list[str] = []
    for root in roots:
        if not root.exists():
            print(f"lint_determinism: no such path {root}", file=sys.stderr)
            return 2
        findings.extend(lint_tree(root))
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"lint_determinism: {len(findings)} unseeded global-stream "
            "call(s); thread an explicit seeded generator instead",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: clean ({', '.join(map(str, roots))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
