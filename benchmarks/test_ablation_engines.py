"""Ablation — the three engines against each other.

DESIGN.md calls out the geometric-skip engine as the key engineering
choice; this benchmark quantifies it: identical distributions (checked in
the test suite) but wall-clock work proportional to effective interactions
instead of total steps.  The state-indexed engine then removes the
remaining O(n) per-interaction rescan, which is what lets the skip-factor
sweep reach n=160 (the seed topped out at n=80).
"""

from __future__ import annotations

from repro.core.simulator import (
    AgitatedSimulator,
    IndexedSimulator,
    SequentialSimulator,
)
from repro.protocols import GlobalStar


def run_agitated():
    result = AgitatedSimulator(seed=1).run(GlobalStar(), 40, None)
    assert result.converged
    return result


def run_indexed():
    result = IndexedSimulator(seed=1).run(GlobalStar(), 40, None)
    assert result.converged
    return result


def run_sequential():
    result = SequentialSimulator(seed=1).run(GlobalStar(), 40, max_steps=10_000_000)
    assert result.converged
    return result


def test_ablation_agitated_engine(benchmark):
    result = benchmark.pedantic(run_agitated, rounds=5, iterations=1)
    print(
        f"\nagitated: {result.steps} steps simulated via "
        f"{result.effective_steps} effective interactions "
        f"({result.steps / max(1, result.effective_steps):.0f}x skip factor)"
    )


def test_ablation_indexed_engine(benchmark):
    result = benchmark.pedantic(run_indexed, rounds=5, iterations=1)
    print(
        f"\nindexed: {result.steps} steps simulated via "
        f"{result.effective_steps} effective interactions with "
        f"class-level bookkeeping"
    )


def test_ablation_sequential_engine(benchmark):
    result = benchmark.pedantic(run_sequential, rounds=3, iterations=1)
    print(f"\nsequential: {result.steps} steps walked one by one")


def test_ablation_skip_factor_grows_with_n(benchmark):
    """The skip factor (steps per effective interaction) grows with n —
    exactly the waste the event-driven engines avoid.  Swept with the
    indexed engine, one tier beyond the seed's largest size."""
    factors = []
    for n in (10, 20, 40, 80, 160):
        result = IndexedSimulator(seed=2).run(GlobalStar(), n, None)
        factors.append(result.steps / max(1, result.effective_steps))
    print(f"\nskip factors for n=10..160: {[f'{f:.1f}' for f in factors]}")
    assert factors[-1] > factors[0]
    benchmark.pedantic(
        lambda: IndexedSimulator(seed=3).run(GlobalStar(), 40, None),
        rounds=3,
        iterations=1,
    )
