"""Experiment F4 — regenerate Figure 4: the (U, D) partitioning with its
perfect vertical matching, measured as a function of n (a Θ(n²) maximum
matching process).
"""

from __future__ import annotations

from benchmarks.conftest import fitted_exponent, print_sweep, sweep
from repro.core.simulator import run_to_convergence
from repro.generic import UDPartition
from repro.processes import maximum_matching_expectation


def test_figure4_partition_shape_and_time(benchmark):
    # 40 trials: the fitted exponent of a 4-point sweep at these small
    # sizes is noisy at 20 trials (sample wobble pushed it below 1.6).
    means = sweep(UDPartition, (12, 18, 27, 40), 40, measure="last_change")
    print_sweep(
        "Figure 4 / (U,D) partitioning (Θ(n²) matching)",
        means,
        extra=("matching E[X]", maximum_matching_expectation),
    )
    fit = fitted_exponent(means)
    print(f"fitted: {fit.describe()}")
    assert 1.6 < fit.exponent < 2.4

    # Shape: equal halves, matched pairwise (Figure 4's layout).
    protocol = UDPartition()
    result = run_to_convergence(protocol, 20, seed=4)
    assert protocol.target_reached(result.config)
    config = result.config
    assert len(config.nodes_in_state("qu")) == 10
    assert len(config.nodes_in_state("qd")) == 10
    for u in config.nodes_in_state("qu"):
        (v,) = config.neighbors(u)
        assert config.state(v) == "qd"

    benchmark.pedantic(
        lambda: run_to_convergence(UDPartition(), 20, seed=1),
        rounds=3,
        iterations=1,
    )
