"""Experiment F7/F8 — regenerate Figures 7 and 8: the three-way (U, D, M)
partitioning of Theorem 15, built by its four interaction rules.
"""

from __future__ import annotations

from benchmarks.conftest import fitted_exponent, print_sweep, sweep
from repro.core.simulator import run_to_convergence
from repro.core.trace import Trace
from repro.core.simulator import AgitatedSimulator
from repro.generic import UDMPartition


def test_figure7_partition_shape(benchmark):
    """Figure 7: qd - qu - qm chains spanning the population."""
    protocol = UDMPartition()
    result = run_to_convergence(protocol, 24, seed=2)
    assert result.converged
    triples = protocol.triples(result.config)
    print(f"\nFigure 7: {len(triples)} (qd, qu, qm) chains on n=24")
    assert len(triples) == 8
    counts = result.config.state_counts()
    assert counts.get("qu", 0) == counts.get("qd", 0) == counts.get("qm", 0) == 8
    benchmark.pedantic(
        lambda: run_to_convergence(UDMPartition(), 24, seed=1),
        rounds=3,
        iterations=1,
    )


def test_figure8_rule_usage(benchmark):
    """Figure 8 walks through the four rules; check all of them fire in a
    typical execution (including the release rule (qm', qd, 1))."""
    protocol = UDMPartition()
    trace = Trace()
    result = AgitatedSimulator(seed=15).run(protocol, 30, None, trace=trace)
    assert result.converged
    fired = set()
    for event in trace.events:
        fired.add((event.u_before, event.v_before, event.edge_before))
    normalized = {tuple(sorted(map(str, (a, b)))) + (c,) for a, b, c in fired}
    print(f"\nFigure 8: distinct rule applications observed: {len(normalized)}")
    assert ("q0", "q0", 0) in normalized
    assert ("q0", "qup", 0) in normalized
    assert ("qup", "qup", 0) in normalized
    assert ("qd", "qmp", 1) in normalized  # the release step of Fig. 8(iv)
    benchmark.pedantic(
        lambda: run_to_convergence(UDMPartition(), 18, seed=3),
        rounds=3,
        iterations=1,
    )


def test_figure7_convergence_scaling(benchmark):
    # 30 trials: the 4-point fitted exponent wobbles outside the band at
    # 15 trials on some seed streams.
    means = sweep(UDMPartition, (12, 18, 27, 39), 30, measure="last_change")
    print_sweep("Figure 7 / (U,D,M) partitioning time", means)
    fit = fitted_exponent(means)
    print(f"fitted: {fit.describe()}")
    assert 1.4 < fit.exponent < 2.6, fit.describe()
    benchmark.pedantic(
        lambda: run_to_convergence(UDMPartition(), 18, seed=5),
        rounds=3,
        iterations=1,
    )
