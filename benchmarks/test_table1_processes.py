"""Experiment T1 — regenerate Table 1: expected convergence times of the
seven fundamental probabilistic processes (paper Propositions 1-7).

For each process we measure mean convergence over a size sweep, print the
paper-style table row (measured vs the exact analytic expectation), and
assert the claimed asymptotic order by fitting the polynomial exponent
after dividing out the known logarithmic factor.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fitted_exponent, print_sweep, sweep
from repro.analysis import run_trials
from repro.processes import (
    EdgeCover,
    MaximumMatchingProcess,
    MeetEverybody,
    NodeCover,
    OneToAllElimination,
    OneToOneElimination,
    OneWayEpidemic,
    expectation,
    node_cover_bounds,
)

SIZES = (16, 24, 36, 54)
TRIALS = 20

#: (factory, paper order, log factor to divide out, expected exponent window)
CASES = {
    "One-Way-Epidemic": (OneWayEpidemic, "Θ(n log n)", 1, (0.6, 1.4)),
    "One-To-One-Elimination": (OneToOneElimination, "Θ(n²)", 0, (1.6, 2.4)),
    "Maximum-Matching": (MaximumMatchingProcess, "Θ(n²)", 0, (1.6, 2.4)),
    "One-To-All-Elimination": (OneToAllElimination, "Θ(n log n)", 1, (0.6, 1.4)),
    "Meet-Everybody": (MeetEverybody, "Θ(n² log n)", 1, (1.6, 2.4)),
    "Node-Cover": (NodeCover, "Θ(n log n)", 1, (0.6, 1.4)),
    "Edge-Cover": (EdgeCover, "Θ(n² log n)", 1, (1.6, 2.4)),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_table1_row(benchmark, name):
    factory, order, log_power, window = CASES[name]
    means = sweep(factory, SIZES, TRIALS, measure="last_change")
    print_sweep(
        f"Table 1 / {name}   paper: {order}",
        means,
        extra=(
            "exact E[X]",
            lambda n: expectation(name, n) or sum(node_cover_bounds(n)) / 2,
        ),
    )
    fit = fitted_exponent(means, log_power=log_power)
    print(f"fitted: {fit.describe()}")
    low, high = window
    assert low < fit.exponent < high, (name, fit.describe())
    # Measured means must track the exact expectations (Props 1-7).
    for n in SIZES:
        exact = expectation(name, n)
        if exact is not None:
            assert abs(means[n].mean - exact) / exact < 0.35, (name, n)
        else:
            lower, upper = node_cover_bounds(n)
            assert 0.6 * lower <= means[n].mean <= 1.4 * upper

    benchmark.pedantic(
        lambda: run_trials(factory, 24, 3, measure="last_change"),
        rounds=3,
        iterations=1,
    )
