"""Count-engine scaling smoke — frontier rows with an acceptance gate.

Runs :func:`repro.analysis.bench.bench_frontier` on a CI-sized slice of
the Figure-2 line frontier (count engine to n=10^5, indexed engine to
n=10^3 — the indexed n=10^4 anchor costs ~half an hour and is paid only
by the full local run), merges the rows into ``BENCH_engines.json``
under ``frontier_count_scaling``, and asserts:

* every count-engine cell converged (the tau-leap regime must actually
  finish the line construction at scale, not time out);
* the count engine clears n=10^4 in seconds, not minutes;
* when the record's largest common size is >= 10^4 (the full local
  frontier), the count-vs-indexed speedup there is >= 10x.

Not collected by the default ``pytest`` run; invoke explicitly::

    PYTHONPATH=src python -m pytest benchmarks/perf_frontier.py -s

Pass ``REPRO_BENCH_FULL_FRONTIER=1`` to run the complete sweep
(count to n=10^6 plus the indexed n=10^4 anchor) as committed in
``BENCH_engines.json``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis.bench import bench_frontier, format_bench_frontier

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engines.json"

#: The acceptance bar at the n=10^4 anchor of the full frontier.
MIN_SPEEDUP = 10.0

#: Wall-clock smoke bound for the count engine at n=10^4 (measured
#: ~0.3 s; the bound is loose to absorb slow CI hosts).
MAX_SECONDS_AT_10K = 60.0

SMOKE_COUNT_SIZES = (100, 1_000, 10_000, 100_000)
SMOKE_INDEXED_SIZES = (100, 1_000)


def test_perf_frontier():
    full = os.environ.get("REPRO_BENCH_FULL_FRONTIER") == "1"
    kwargs = (
        {}
        if full
        else {
            "count_sizes": SMOKE_COUNT_SIZES,
            "indexed_sizes": SMOKE_INDEXED_SIZES,
        }
    )
    record = bench_frontier(merge_into=str(OUT_PATH), **kwargs)
    print("\n" + format_bench_frontier(record))

    count_cells = {
        cell["n"]: cell
        for cell in record["cells"]
        if cell["engine"] == "count"
    }
    assert all(cell["converged"] for cell in count_cells.values())
    assert count_cells[10_000]["mean_seconds"] < MAX_SECONDS_AT_10K

    headline = record["speedup_count_vs_indexed"]
    if headline["n"] >= 10_000:
        assert headline["speedup"] >= MIN_SPEEDUP, (
            f"count engine only {headline['speedup']:.1f}x faster than "
            f"indexed at n={headline['n']} (need >= {MIN_SPEEDUP}x)"
        )


if __name__ == "__main__":
    test_perf_frontier()
