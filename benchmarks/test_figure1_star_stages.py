"""Experiment F1 — regenerate Figure 1: the three stages of spanning-star
formation.

(a) all particles black (centers), no active connections;
(b) mid-execution: a few surviving blacks, each with red neighbors, and
    some red-red connections still present;
(c) a unique black connected to all reds, no red-red connections — the
    stable spanning star.
"""

from __future__ import annotations

from repro.core.simulator import AgitatedSimulator
from repro.core.trace import Trace
from repro.protocols import GlobalStar
from repro.viz import component_summary, render_star, state_summary

N = 24


def run_with_snapshots(seed=11):
    protocol = GlobalStar()
    trace = Trace(snapshot_predicate=lambda step, cfg: True)
    result = AgitatedSimulator(seed=seed).run(protocol, N, None, trace=trace)
    assert result.converged
    return protocol, result, trace


def test_figure1_stages(benchmark):
    protocol, result, trace = run_with_snapshots()

    # Stage (a): the initial configuration.
    initial = protocol.initial_configuration(N)
    print("\n=== Figure 1(a): initial ===")
    print(state_summary(initial))
    assert initial.state_counts() == {"c": N}
    assert initial.n_active_edges == 0

    # Stage (b): the first configuration with exactly 3 centers left.
    stage_b = next(
        cfg
        for _, cfg in trace.snapshots
        if cfg.state_counts().get("c", 0) == 3
    )
    print("\n=== Figure 1(b): three surviving blacks ===")
    print(state_summary(stage_b))
    print(component_summary(stage_b))
    # every center has at least ... peripherals exist, and some red-red
    # edges may be present — assert the transitional shape, not purity.
    assert stage_b.state_counts().get("p", 0) == N - 3

    # Stage (c): the stable star.
    final = result.config
    print("\n=== Figure 1(c): stable spanning star ===")
    print(render_star(final))
    counts = final.state_counts()
    assert counts.get("c", 0) == 1
    (center,) = final.nodes_in_state("c")
    assert final.degree(center) == N - 1
    # no red-red connections
    for u, v in final.active_edges():
        assert center in (u, v)

    benchmark.pedantic(
        lambda: AgitatedSimulator(seed=1).run(GlobalStar(), N, None),
        rounds=3,
        iterations=1,
    )


def test_figure1_center_count_monotone(benchmark):
    """The black population only shrinks: 24 -> ... -> 1."""
    _, result, trace = run_with_snapshots(seed=5)
    centers = [cfg.state_counts().get("c", 0) for _, cfg in trace.snapshots]
    assert all(a >= b for a, b in zip(centers, centers[1:]))
    assert centers[-1] == 1
    print(f"\ncenter-count trajectory (len {len(centers)}): "
          f"{centers[:10]} ... {centers[-3:]}")
    benchmark.pedantic(
        lambda: AgitatedSimulator(seed=2).run(GlobalStar(), 12, None),
        rounds=3,
        iterations=1,
    )
