"""Experiment F3 — regenerate Figure 3: the universal construction loop
(draw G ∈ G_{k,1/2} → run the decider → accept/redraw).

Series reported: mean number of loop iterations vs the language's density
P[G ∈ L] under G_{k,1/2} (geometric repeats, paper Remark 1), plus one
full-fidelity run where both the drawing (per-edge interaction coins) and
the decision (TM on a line of agents) run at rule level.
"""

from __future__ import annotations

import statistics

from repro.generic import (
    UniversalConstructor,
    expected_attempts,
    language_probability,
)
from repro.tm.deciders import registry


def test_figure3_attempts_match_language_density(benchmark):
    deciders = registry()
    k_pop = 20  # population; useful space 10
    cases = ["even-edges", "min-degree-1", "connected", "has-edge"]
    print("\n=== Figure 3: loop iterations vs language density ===")
    print(f"{'language':>14} {'P[G in L]':>10} {'E[attempts]':>12} {'measured':>10}")
    for name in cases:
        decider = deciders[name]
        p = language_probability(decider, k_pop // 2, 3000, seed=1)
        attempts = [
            UniversalConstructor(decider, rule_level=False)
            .construct(k_pop, seed=seed)
            .attempts
            for seed in range(250)
        ]
        measured = statistics.fmean(attempts)
        print(
            f"{name:>14} {p:>10.3f} {expected_attempts(p):>12.2f} "
            f"{measured:>10.2f}"
        )
        if p > 0.05:
            assert abs(measured - expected_attempts(p)) < 0.6 * expected_attempts(p)
    benchmark.pedantic(
        lambda: UniversalConstructor(
            deciders["even-edges"], rule_level=False
        ).construct(k_pop, seed=0),
        rounds=5,
        iterations=1,
    )


def test_figure3_full_rule_level_fidelity(benchmark):
    """One complete run with no shortcuts: interaction-level coins AND
    the decider TM executed on a line of agents."""
    decider = registry()["even-edges"]
    uc = UniversalConstructor(decider, rule_level=True, decide_on_line=True)
    report = uc.construct(12, seed=9)
    print(
        f"\nFigure 3 full-fidelity: attempts={report.attempts} "
        f"interaction_steps={report.interaction_steps} "
        f"coin_tosses={report.coin_tosses} useful={report.useful_space}"
    )
    assert report.graph.number_of_edges() % 2 == 0
    assert report.decided_on_line
    assert report.interaction_steps > 0
    benchmark.pedantic(
        lambda: UniversalConstructor(
            decider, rule_level=True, decide_on_line=True
        ).construct(10, seed=2),
        rounds=2,
        iterations=1,
    )


def test_figure3_equiprobability(benchmark):
    """All 2^C(k,2) labelled graphs are drawn equiprobably (the paper's
    equiprobable-constructor property), chi-squared at k=4."""
    from collections import Counter

    from repro.generic import (
        chi_square_critical,
        chi_square_uniformity,
        graph_signature,
    )
    from repro.tm.deciders import PythonDecider

    accept_all = PythonDecider("all", lambda g: True, "O(1)")
    counts = Counter()
    draws = 12_000
    for seed in range(draws):
        report = UniversalConstructor(accept_all, rule_level=False).construct(
            8, seed=seed
        )
        counts[graph_signature(report.graph)] += 1
    categories = 2 ** (4 * 3 // 2)  # 64 labelled graphs on k=4
    stat = chi_square_uniformity(counts, categories)
    critical = chi_square_critical(categories - 1, alpha=0.001)
    print(f"\nFigure 3 equiprobability: chi²={stat:.1f} < {critical:.1f} "
          f"({len(counts)}/{categories} graphs seen)")
    assert stat < critical
    benchmark.pedantic(
        lambda: UniversalConstructor(accept_all, rule_level=False).construct(
            8, seed=0
        ),
        rounds=5,
        iterations=1,
    )
