"""Perf smoke test for the parallel experiment runner.

Runs :func:`repro.analysis.bench.bench_runner` — one Figure-2-style
``ExperimentSpec`` through the serial and multiprocessing executors —
writes the machine-readable record to ``BENCH_runner.json`` at the repo
root, asserts the executor-equivalence contract (identical per-trial
records up to wall-clock timing), and gates the parallel speedup when
the host actually has cores to parallelize over.

Not collected by the default ``pytest`` run (the filename carries no
``test_`` prefix, keeping tier-1 fast); invoke explicitly::

    PYTHONPATH=src python -m pytest benchmarks/perf_runner.py -s

or run the same workload via ``python -m repro.cli bench --runner``.
``REPRO_BENCH_JOBS`` overrides the worker count (CI uses 2).
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

from repro.analysis.bench import bench_runner, format_bench_runner
from repro.analysis.runner import ExperimentSpec, Runner
from repro.core.scenario import Scenario

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runner.json"

#: Wall-clock acceptance bars, keyed by what the host can deliver: a
#: pool cannot beat its core count, so the gate scales with it (and is
#: informational below 4 cores).
MIN_SPEEDUP_8_CORES = 4.0
MIN_SPEEDUP_4_CORES = 2.0


def test_perf_runner():
    jobs_env = os.environ.get("REPRO_BENCH_JOBS")
    jobs = int(jobs_env) if jobs_env else None
    record = bench_runner(jobs=jobs, out=str(OUT_PATH))
    print("\n" + format_bench_runner(record))

    # The hard gate: executors are interchangeable.
    assert record["records_identical"], (
        "serial and multiprocessing executors disagreed on per-trial "
        "records for an identical spec"
    )

    # The speedup gate only binds where the hardware allows a speedup.
    cores = record["cpu_count"]
    speedup = record["speedup"]
    if cores >= 8 and record["jobs"] >= 8:
        assert speedup >= MIN_SPEEDUP_8_CORES, (
            f"process executor only {speedup:.1f}x faster than serial "
            f"with {record['jobs']} jobs on {cores} cores "
            f"(need >= {MIN_SPEEDUP_8_CORES}x)"
        )
    elif cores >= 4 and record["jobs"] >= 4:
        assert speedup >= MIN_SPEEDUP_4_CORES, (
            f"process executor only {speedup:.1f}x faster than serial "
            f"with {record['jobs']} jobs on {cores} cores "
            f"(need >= {MIN_SPEEDUP_4_CORES}x)"
        )


def test_scenario_survives_process_executor():
    """Executor equivalence under a *non-default* scenario: the Scenario
    (scheduler spec, fault specs, init spec) must survive the process
    executor's pickling round-trip and reroute every worker to the same
    supporting engine."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        spec = ExperimentSpec(
            protocol="cycle-cover", sizes=(8, 10), trials=4,
            max_steps=500_000,
            scenario=Scenario(
                scheduler="round-robin", faults=("crash:count=1,at=0",),
            ),
        )
        serial = Runner(jobs=1).run(spec)
        parallel = Runner(executor="process", jobs=2).run(spec)
    assert [r.deterministic() for r in serial.records] == [
        r.deterministic() for r in parallel.records
    ], "scenario trials diverged between the serial and process executors"
    assert all(r.converged for r in serial.records)


if __name__ == "__main__":
    test_perf_runner()
    test_scenario_survives_process_executor()
